"""The request record and its timestamp vocabulary.

Every request carries the full timeline needed to compute latency at
any *point of measurement* (Section II): the intended send time (what
the inter-arrival distribution asked for), the actual send time (after
client-side timing error), NIC arrival back at the client, and the
generator's own completion timestamp.

A :class:`Request` is the *in-flight* representation only: it exists
while the request traverses client, links and service tiers, and its
timestamps are flushed into the run's columnar
:class:`~repro.telemetry.SampleColumns` buffer at the point of
measurement.  It is a plain ``__slots__`` class (not a dataclass) so
the hot path allocates no per-instance ``__dict__``.
"""

from __future__ import annotations


class Request:
    """One request flowing through the testbed.

    Attributes:
        request_id: unique sequence number within a run.
        size_kb: payload size used for network serialization cost.
        intended_send_us: send time the inter-arrival schedule asked for.
        actual_send_us: when the generator really sent it.
        server_arrival_us: arrival at the (first-tier) server.
        queue_wait_us: total time queued at servers.
        service_us: total time in service at servers.
        server_departure_us: when the (last-tier) server sent the reply.
        client_nic_us: reply arrival at the client NIC.
        measured_complete_us: generator's completion timestamp.
    """

    __slots__ = (
        "request_id",
        "size_kb",
        "intended_send_us",
        "actual_send_us",
        "server_arrival_us",
        "queue_wait_us",
        "service_us",
        "server_departure_us",
        "client_nic_us",
        "measured_complete_us",
    )

    def __init__(self, request_id: int,
                 size_kb: float = 0.0,
                 intended_send_us: float = 0.0,
                 actual_send_us: float = 0.0,
                 server_arrival_us: float = 0.0,
                 queue_wait_us: float = 0.0,
                 service_us: float = 0.0,
                 server_departure_us: float = 0.0,
                 client_nic_us: float = 0.0,
                 measured_complete_us: float = 0.0) -> None:
        self.request_id = request_id
        self.size_kb = size_kb
        self.intended_send_us = intended_send_us
        self.actual_send_us = actual_send_us
        self.server_arrival_us = server_arrival_us
        self.queue_wait_us = queue_wait_us
        self.service_us = service_us
        self.server_departure_us = server_departure_us
        self.client_nic_us = client_nic_us
        self.measured_complete_us = measured_complete_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Request(request_id={self.request_id}, "
                f"intended_send_us={self.intended_send_us}, "
                f"measured_complete_us={self.measured_complete_us})")

    # ------------------------------------------------------------------
    @property
    def send_error_us(self) -> float:
        """How late the request was actually sent (timing disruption)."""
        return self.actual_send_us - self.intended_send_us

    @property
    def true_latency_us(self) -> float:
        """End-to-end latency up to the client NIC (ground truth)."""
        return self.client_nic_us - self.actual_send_us

    @property
    def measured_latency_us(self) -> float:
        """Latency as reported by an in-generator point of measurement."""
        return self.measured_complete_us - self.actual_send_us

    @property
    def client_overhead_us(self) -> float:
        """Measurement error introduced on the client side."""
        return self.measured_latency_us - self.true_latency_us

    def validate(self) -> None:
        """Check timestamp monotonicity; raises ValueError on violation."""
        timeline = (
            ("intended_send_us", self.intended_send_us),
            ("actual_send_us", self.actual_send_us),
            ("server_arrival_us", self.server_arrival_us),
            ("server_departure_us", self.server_departure_us),
            ("client_nic_us", self.client_nic_us),
            ("measured_complete_us", self.measured_complete_us),
        )
        previous_name, previous_value = timeline[0]
        for name, value in timeline[1:]:
            if value + 1e-9 < previous_value:
                raise ValueError(
                    f"request {self.request_id}: {name}={value} precedes "
                    f"{previous_name}={previous_value}"
                )
            previous_name, previous_value = name, value
