"""Search drivers: grid, seeded random, successive halving.

All three drivers share one evaluation path
(:class:`CandidateEvaluator`): a candidate assignment is applied to
the base plan, compiled into one
:class:`~repro.campaign.spec.ConditionSpec` per objective sweep point,
and routed through :class:`~repro.campaign.executor.CampaignExecutor`
-- so evaluations inherit the campaign layer's warm workers, failure
isolation, and :class:`~repro.campaign.store.ResultStore` memoization.
Every condition is keyed by content hash: a killed search re-runs only
the conditions the store never saw, and re-evaluating a candidate the
store already holds is a pure cache hit.

Budget accounting is in *simulated requests*: one evaluation charges
``runs x num_requests x len(qps_list)`` whether it simulated or hit
the cache, so a driver's :meth:`~SearchDriver.declared_budget` is an
upper bound on the requests any invocation simulates.

Determinism: every source of order is explicit (grid product order,
``random.Random(seed)`` draws, score-then-label survivor ranking), so
a fixed seed reproduces the same trials, scores, and winner in any
process regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.specs import ExperimentPlan
from repro.campaign.executor import (
    STATUS_DONE,
    STATUS_HIT,
    CampaignExecutor,
    ProgressCallback,
)
from repro.campaign.spec import ConditionSpec, cell_seed
from repro.campaign.store import ResultStore
from repro.core.provisioning import CapacityResult
from repro.errors import ExperimentError, SpecValidationError
from repro.tune.objective import CapacityObjective
from repro.tune.space import SearchSpace
from repro.tune.tunables import format_value, thaw

#: Store rows written by autotune evaluations carry this campaign tag.
TUNE_CAMPAIGN = "autotune"


def _score_of(trial: "TrialEval") -> float:
    """Sort key helper: failed trials rank below any real score."""
    return trial.score if trial.score is not None else float("-inf")


def assignment_label(assignment: Mapping[str, Any]) -> str:
    """Canonical condition label for one assignment.

    Sorted by tunable name so the label -- which feeds
    :func:`~repro.campaign.spec.cell_seed` and the store rows -- never
    depends on dict iteration order.
    """
    return ",".join(
        f"{name}={format_value(assignment[name])}"
        for name in sorted(assignment))


@dataclass
class TrialEval:
    """One candidate evaluated at one budget.

    Attributes:
        assignment: tunable name -> value.
        label: the canonical condition label.
        num_requests: per-run request budget of this evaluation.
        rung: successive-halving rung (0 for flat searches).
        score: the objective score, or ``None`` for a failed trial.
        capacity: the full capacity result behind the score.
        cache_hits / executed / failed: condition counters for this
            evaluation (one condition per objective sweep point).
        charged_requests: requests charged against the search budget
            (hits included -- the budget bounds worst-case work).
        error: joined condition errors for a failed trial.
    """

    assignment: Dict[str, Any]
    label: str
    num_requests: int
    rung: int = 0
    score: Optional[float] = None
    capacity: Optional[CapacityResult] = None
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    charged_requests: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the trial produced a score."""
        return self.score is not None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (reports, ``--json`` exports)."""
        return {
            "assignment": {name: thaw(value)
                           for name, value in self.assignment.items()},
            "label": self.label,
            "num_requests": self.num_requests,
            "rung": self.rung,
            "score": self.score,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": self.failed,
            "charged_requests": self.charged_requests,
            "error": self.error,
        }


class CandidateEvaluator:
    """Scores candidate assignments through the campaign executor.

    Candidates are reduced to campaign conditions, so only the
    condition-identity fields (workload + params, hardware pair, qps,
    runs, num_requests, seed block, cluster/graph/engine/arrival/
    workers) participate; observability toggles on the base plan
    (sink, trace, metrics) do not affect scoring and are ignored.

    Args:
        plan: the base plan candidates are derived from.
        space: the tunable space (validated against *plan* here, so an
            inapplicable space fails before anything simulates).
        objective: the capacity objective.
        runs: repetitions per sweep point.
        base_seed: seed root; per-condition blocks derive from the
            candidate label + qps via :func:`cell_seed`, never from
            trial order -- evaluating candidates in any order yields
            identical results.
        store: evaluation cache; ``None`` disables memoization.
        max_workers: executor processes (1 = inline).
    """

    def __init__(self, plan: ExperimentPlan, space: SearchSpace,
                 objective: CapacityObjective, *,
                 runs: int = 3, base_seed: int = 0,
                 store: Optional[ResultStore] = None,
                 max_workers: int = 1, chunksize: int = 1,
                 campaign: str = TUNE_CAMPAIGN) -> None:
        if runs < 1:
            raise SpecValidationError(
                f"runs must be >= 1, got {runs}")
        space.validate_against(plan)
        self.plan = plan
        self.space = space
        self.objective = objective
        self.runs = int(runs)
        self.base_seed = int(base_seed)
        self.campaign = str(campaign)
        # persist_batch=1: the resume guarantee is per evaluation, so
        # every finished condition must survive a kill immediately.
        self.executor = CampaignExecutor(
            store=store, max_workers=max_workers, chunksize=chunksize,
            fail_fast=False, persist_batch=1)

    # ------------------------------------------------------------------
    def conditions(self, assignment: Mapping[str, Any],
                   num_requests: int) -> List[ConditionSpec]:
        """The condition list one evaluation executes (one per qps)."""
        candidate = self.space.apply(self.plan, assignment)
        label = assignment_label(assignment)
        client_label = candidate.hardware.client_label or "client"
        extra = dict(candidate.workload.params)
        if candidate.load.warmup_fraction is not None:
            extra["warmup_fraction"] = candidate.load.warmup_fraction
        return [
            ConditionSpec(
                workload=candidate.workload.name,
                client_label=client_label,
                client_config=candidate.hardware.client,
                condition_label=label,
                server_config=candidate.hardware.server,
                qps=float(qps),
                runs=self.runs,
                num_requests=int(num_requests),
                base_seed=cell_seed(self.base_seed, client_label,
                                    label, float(qps)),
                extra=tuple(sorted(extra.items())),
                cluster=candidate.cluster,
                engine=candidate.policy.engine,
                graph=candidate.graph,
                arrival=candidate.load.arrival,
                workers=candidate.policy.workers,
            )
            for qps in self.objective.qps_list]

    def cost_per_trial(self, num_requests: int) -> int:
        """Requests one evaluation charges against the budget."""
        return (self.runs * int(num_requests)
                * len(self.objective.qps_list))

    def evaluate_many(self, assignments: Sequence[Mapping[str, Any]],
                      num_requests: int, rung: int = 0,
                      progress: Optional[ProgressCallback] = None
                      ) -> List[TrialEval]:
        """Evaluate a batch of assignments at one budget.

        All conditions ship to the executor in one call, so cache hits
        are served first and a process pool stays warm across the
        whole batch.
        """
        per_trial = len(self.objective.qps_list)
        batches = [self.conditions(assignment, num_requests)
                   for assignment in assignments]
        flat = [condition for batch in batches for condition in batch]
        outcomes = self.executor.run_conditions(
            flat, campaign=self.campaign, progress=progress)
        trials: List[TrialEval] = []
        for index, assignment in enumerate(assignments):
            chunk = outcomes[index * per_trial:(index + 1) * per_trial]
            trial = TrialEval(
                assignment=dict(assignment),
                label=assignment_label(assignment),
                num_requests=int(num_requests),
                rung=int(rung),
                cache_hits=sum(
                    1 for o in chunk if o.status == STATUS_HIT),
                executed=sum(
                    1 for o in chunk if o.status == STATUS_DONE),
                failed=sum(1 for o in chunk if o.result is None),
                charged_requests=self.cost_per_trial(num_requests),
            )
            if trial.failed:
                trial.error = "; ".join(
                    f"{o.spec.qps:g}: {o.error}"
                    for o in chunk if o.result is None)
            else:
                results = {o.spec.qps: o.result for o in chunk
                           if o.result is not None}
                capacity = self.objective.capacity(results)
                trial.capacity = capacity
                trial.score = capacity.best_capacity_qps
            trials.append(trial)
        return trials


@dataclass
class TuneResult:
    """Everything one search invocation produced.

    Attributes:
        driver: driver name (``grid`` / ``random`` / ``halving``).
        space / objective: the definitions that ran.
        trials: every evaluation, in execution order.
        declared_budget: the driver's request-budget upper bound.
        base_plan_hash: content hash of the base plan.
        runs / base_seed: evaluator settings, for provenance.
        elapsed_s: wall-clock seconds.
    """

    driver: str
    space: SearchSpace
    objective: CapacityObjective
    trials: List[TrialEval] = field(default_factory=list)
    declared_budget: int = 0
    base_plan_hash: str = ""
    runs: int = 1
    base_seed: int = 0
    elapsed_s: float = 0.0

    # ------------------------------------------------------------------
    @property
    def best(self) -> Optional[TrialEval]:
        """The winning trial: highest score, largest budget, then label.

        ``None`` when every trial failed.
        """
        scored = [t for t in self.trials if t.score is not None]
        if not scored:
            return None
        return sorted(
            scored,
            key=lambda t: (-_score_of(t), -t.num_requests, t.label))[0]

    @property
    def charged_requests(self) -> int:
        """Requests charged against the budget (hits included)."""
        return sum(t.charged_requests for t in self.trials)

    @property
    def cache_hits(self) -> int:
        """Conditions served from the store across all trials."""
        return sum(t.cache_hits for t in self.trials)

    @property
    def executed(self) -> int:
        """Conditions actually simulated across all trials."""
        return sum(t.executed for t in self.trials)

    @property
    def failed(self) -> int:
        """Conditions that errored across all trials."""
        return sum(t.failed for t in self.trials)

    def summary(self) -> str:
        """One-line human summary of the invocation."""
        best = self.best
        verdict = (f"best {best.label} @ {best.score:,.0f} QPS"
                   if best is not None else "no successful trial")
        return (f"autotune [{self.driver}]: {len(self.trials)} trials, "
                f"{self.cache_hits} cached, {self.executed} executed, "
                f"{self.failed} failed conditions in "
                f"{self.elapsed_s:.2f}s -- {verdict}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the ``--json`` export)."""
        best = self.best
        return {
            "driver": self.driver,
            "space": self.space.to_dict(),
            "objective": self.objective.to_dict(),
            "trials": [t.to_dict() for t in self.trials],
            "declared_budget": self.declared_budget,
            "charged_requests": self.charged_requests,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": self.failed,
            "base_plan_hash": self.base_plan_hash,
            "runs": self.runs,
            "base_seed": self.base_seed,
            "elapsed_s": self.elapsed_s,
            "best": best.to_dict() if best is not None else None,
        }


class SearchDriver:
    """Driver protocol: a budget declaration and a run loop."""

    name: str = ""

    def declared_budget(self, evaluator: CandidateEvaluator) -> int:
        """Upper bound on requests any invocation simulates."""
        raise NotImplementedError

    def run(self, evaluator: CandidateEvaluator,
            progress: Optional[ProgressCallback] = None) -> TuneResult:
        """Execute the search to completion."""
        raise NotImplementedError

    def _result(self, evaluator: CandidateEvaluator,
                trials: List[TrialEval],
                started: float) -> TuneResult:
        return TuneResult(
            driver=self.name, space=evaluator.space,
            objective=evaluator.objective, trials=trials,
            declared_budget=self.declared_budget(evaluator),
            base_plan_hash=evaluator.plan.content_hash(),
            runs=evaluator.runs, base_seed=evaluator.base_seed,
            elapsed_s=time.perf_counter() - started)


@dataclass
class GridSearch(SearchDriver):
    """Exhaustive sweep of the space's grid, in product order."""

    num_requests: int = 200

    name = "grid"

    def declared_budget(self, evaluator: CandidateEvaluator) -> int:
        return (evaluator.space.size()
                * evaluator.cost_per_trial(self.num_requests))

    def run(self, evaluator: CandidateEvaluator,
            progress: Optional[ProgressCallback] = None) -> TuneResult:
        started = time.perf_counter()
        trials = evaluator.evaluate_many(
            evaluator.space.grid(), self.num_requests,
            progress=progress)
        return self._result(evaluator, trials, started)


@dataclass
class RandomSearch(SearchDriver):
    """Seeded random draws, deduplicated, evaluated in draw order.

    Draws come from ``random.Random(seed)`` only, so the candidate
    sequence is identical in every process.  Duplicate draws are
    skipped (they would be pure cache hits anyway) until ``samples``
    distinct candidates exist or the attempt cap -- covering spaces
    smaller than ``samples`` -- is exhausted.
    """

    samples: int = 8
    seed: int = 0
    num_requests: int = 200

    name = "random"

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise SpecValidationError(
                f"samples must be >= 1, got {self.samples}")

    def declared_budget(self, evaluator: CandidateEvaluator) -> int:
        return (self.samples
                * evaluator.cost_per_trial(self.num_requests))

    def _draw(self, space: SearchSpace) -> List[Dict[str, Any]]:
        rng = random.Random(self.seed)
        drawn: List[Dict[str, Any]] = []
        seen: set = set()
        attempts = 0
        while len(drawn) < self.samples and attempts < self.samples * 50:
            attempts += 1
            assignment = space.sample(rng)
            key = space.assignment_key(assignment)
            if key in seen:
                continue
            seen.add(key)
            drawn.append(assignment)
        return drawn

    def run(self, evaluator: CandidateEvaluator,
            progress: Optional[ProgressCallback] = None) -> TuneResult:
        started = time.perf_counter()
        trials = evaluator.evaluate_many(
            self._draw(evaluator.space), self.num_requests,
            progress=progress)
        return self._result(evaluator, trials, started)


@dataclass
class SuccessiveHalving(SearchDriver):
    """Rung-promoted search: wide and cheap, then narrow and thorough.

    Rung 0 evaluates ``initial`` candidates (default: the full grid;
    larger-than-grid values clip; smaller values draw a seeded random
    subset) at ``budget0`` requests per run.  Each promotion keeps the
    top ``ceil(n / eta)`` by score (ties broken by label, so
    promotion is deterministic) and multiplies the per-run budget by
    ``eta``, until one candidate remains.  Failed trials never
    promote.
    """

    budget0: int = 50
    eta: int = 2
    seed: int = 0
    initial: Optional[int] = None

    name = "halving"

    def __post_init__(self) -> None:
        if self.budget0 < 1:
            raise SpecValidationError(
                f"budget0 must be >= 1, got {self.budget0}")
        if self.eta < 2:
            raise SpecValidationError(
                f"eta must be >= 2, got {self.eta}")
        if self.initial is not None and self.initial < 1:
            raise SpecValidationError(
                f"initial must be >= 1, got {self.initial}")

    # ------------------------------------------------------------------
    def _initial_count(self, space: SearchSpace) -> int:
        size = space.size()
        if self.initial is None:
            return size
        return min(int(self.initial), size)

    def rungs(self, n0: int) -> List[Tuple[int, int]]:
        """The ``(candidates, requests-per-run)`` schedule from *n0*."""
        out: List[Tuple[int, int]] = []
        n, budget = max(1, int(n0)), self.budget0
        while True:
            out.append((n, budget))
            if n == 1:
                break
            n = math.ceil(n / self.eta)
            budget *= self.eta
        return out

    def declared_budget(self, evaluator: CandidateEvaluator) -> int:
        n0 = self._initial_count(evaluator.space)
        return sum(n * evaluator.cost_per_trial(budget)
                   for n, budget in self.rungs(n0))

    # ------------------------------------------------------------------
    def run(self, evaluator: CandidateEvaluator,
            progress: Optional[ProgressCallback] = None) -> TuneResult:
        started = time.perf_counter()
        space = evaluator.space
        candidates = space.grid()
        count = self._initial_count(space)
        if count < len(candidates):
            rng = random.Random(self.seed)
            candidates = rng.sample(candidates, count)
        trials: List[TrialEval] = []
        for rung, (n, budget) in enumerate(self.rungs(len(candidates))):
            current = candidates[:n]
            evals = evaluator.evaluate_many(
                current, budget, rung=rung, progress=progress)
            trials.extend(evals)
            survivors = sorted(
                (t for t in evals if t.score is not None),
                key=lambda t: (-_score_of(t), t.label))
            if not survivors:
                break
            keep = max(1, math.ceil(len(current) / self.eta))
            by_label = {t.label: t.assignment for t in evals}
            candidates = [by_label[t.label]
                          for t in survivors[:keep]]
            if len(current) == 1:
                break
        return self._result(evaluator, trials, started)


#: driver name -> class, the CLI dispatch (with did-you-mean).
SEARCH_DRIVERS: Dict[str, type] = {
    GridSearch.name: GridSearch,
    RandomSearch.name: RandomSearch,
    SuccessiveHalving.name: SuccessiveHalving,
}


def make_driver(name: str, **kwargs: Any) -> SearchDriver:
    """Build a driver by name (strict, with a did-you-mean)."""
    import difflib

    if name not in SEARCH_DRIVERS:
        close = difflib.get_close_matches(
            str(name), list(SEARCH_DRIVERS), n=1)
        hint = f" -- did you mean {close[0]!r}?" if close else ""
        raise ExperimentError(
            f"unknown search driver {name!r}{hint}; expected one "
            "of: " + ", ".join(sorted(SEARCH_DRIVERS)))
    return SEARCH_DRIVERS[name](**kwargs)
