"""CLI glue for ``repro autotune``.

Registered by :func:`repro.cli._build_parser`; lives here so the main
CLI module stays import-light (the tune machinery pulls in the
campaign executor).  Not to be confused with ``repro tune`` -- the
paper's host measurement-config advisor -- which keeps its verb; each
verb's ``--help`` points at the other.

Tunable shorthand (``--tunable FIELD=SPEC``):

=====================================  ============================
``hardware.server.smt=bool``           bool knob
``cluster.lb_policy=round-robin,random`` categorical list
``cluster.nodes=1..8`` / ``1..8..2``   int range (inclusive, strided)
``workload.value_size=64.0..4096.0..5`` float range (third = points)
=====================================  ============================

Atoms parse typed: ``on``/``true`` and ``off``/``false`` are bools,
numbers are ints/floats, ``C1+C1E`` splits into a list (C-state
sets), anything else stays a string.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List

from repro.errors import SpecValidationError
from repro.tune.objective import (
    DEFAULT_QOS_TARGET_US,
    OBJECTIVE_METRICS,
    CapacityObjective,
)
from repro.tune.report import render_tune_report, tune_report_dict
from repro.tune.search import (
    CandidateEvaluator,
    GridSearch,
    RandomSearch,
    SearchDriver,
    SuccessiveHalving,
)
from repro.tune.space import SearchSpace
from repro.tune.tunables import (
    BoolTunable,
    CategoricalTunable,
    FloatRangeTunable,
    IntRangeTunable,
    Tunable,
)


def _parse_atom(text: str) -> Any:
    """One typed value token (see module docstring)."""
    lowered = text.strip().lower()
    if lowered in ("on", "true"):
        return True
    if lowered in ("off", "false"):
        return False
    if "+" in text:
        return [part.strip() for part in text.split("+")]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text.strip()


def parse_tunable_option(text: str) -> Tunable:
    """One ``--tunable FIELD=SPEC`` option -> a validated tunable.

    Field typos fail here with the schema's did-you-mean -- before
    anything executes.
    """
    field, sep, spec = text.partition("=")
    field = field.strip()
    spec = spec.strip()
    if not sep or not field or not spec:
        raise SpecValidationError(
            f"--tunable expects FIELD=SPEC, got {text!r}")
    if spec.lower() == "bool":
        return BoolTunable(name=field, field=field)
    if ".." in spec:
        parts = [p.strip() for p in spec.split("..")]
        if len(parts) not in (2, 3):
            raise SpecValidationError(
                f"--tunable range expects LO..HI or LO..HI..N, "
                f"got {spec!r}")
        try:
            ints = [int(p) for p in parts]
        except ValueError:
            ints = []
        if ints:
            step = ints[2] if len(ints) == 3 else 1
            return IntRangeTunable(name=field, field=field,
                                   low=ints[0], high=ints[1],
                                   step=step)
        try:
            low, high = float(parts[0]), float(parts[1])
            points = int(parts[2]) if len(parts) == 3 else 5
        except ValueError as exc:
            raise SpecValidationError(
                f"--tunable range bounds must be numeric, got "
                f"{spec!r}") from exc
        return FloatRangeTunable(name=field, field=field,
                                 low=low, high=high, points=points)
    values = [_parse_atom(part) for part in spec.split(",")]
    return CategoricalTunable(name=field, field=field,
                              values=tuple(values))


def space_from_tunable_args(options: List[str]) -> SearchSpace:
    """A search space from repeated ``--tunable`` options."""
    if not options:
        raise SpecValidationError(
            "declare at least one --tunable FIELD=SPEC (or --space)")
    return SearchSpace(tunables=tuple(
        parse_tunable_option(option) for option in options))


def add_autotune_parser(commands: argparse._SubParsersAction) -> None:
    """Register the ``autotune`` verb on the CLI's subparser set."""
    autotune = commands.add_parser(
        "autotune",
        help="search the policy space for the max-capacity config "
             "(closed-loop optimizer; 'repro tune' is the host "
             "measurement-config advisor)",
        description="Search a tunable space over ExperimentPlan "
                    "fields for the configuration maximizing "
                    "capacity under a QoS target.  Evaluations are "
                    "memoized in the result store by content hash: "
                    "killed searches resume, identical re-runs are "
                    "100% cache hits.  For tuning the measurement "
                    "host itself (C-states, governors on /sys), see "
                    "'repro tune'.")
    autotune.add_argument("--workload", default="memcached",
                          help="registered workload name")
    autotune.add_argument("--client", default="LP",
                          help="client preset (LP or HP)")
    source = autotune.add_mutually_exclusive_group(required=True)
    source.add_argument("--tunable", action="append", default=None,
                        metavar="FIELD=SPEC",
                        help="tunable shorthand, repeatable: "
                             "hardware.server.smt=bool, "
                             "cluster.nodes=1..8, "
                             "policy.engine=reference,vectorized")
    source.add_argument("--space", metavar="FILE",
                        help="search-space JSON file "
                             "(SearchSpace.to_json form)")
    autotune.add_argument("--qps", type=float, nargs="+", default=None,
                          help="objective load sweep (default: the "
                               "workload's)")
    autotune.add_argument("--qos-p99", type=float,
                          default=DEFAULT_QOS_TARGET_US,
                          help="QoS latency target in us")
    autotune.add_argument("--metric", default="p99",
                          choices=list(OBJECTIVE_METRICS),
                          help="latency metric the target applies to")
    autotune.add_argument("--search", default="grid",
                          choices=["grid", "random", "halving"],
                          help="search driver")
    autotune.add_argument("--requests", type=int, default=200,
                          help="requests per run per trial "
                               "(grid/random; halving starts at "
                               "--budget0)")
    autotune.add_argument("--samples", type=int, default=8,
                          help="random-search candidate draws")
    autotune.add_argument("--budget0", type=int, default=50,
                          help="successive-halving rung-0 requests "
                               "per run")
    autotune.add_argument("--eta", type=int, default=2,
                          help="successive-halving promotion factor")
    autotune.add_argument("--initial", type=int, default=None,
                          help="successive-halving rung-0 candidate "
                               "count (default: the full grid)")
    autotune.add_argument("--runs", type=int, default=3,
                          help="repetitions per sweep point")
    autotune.add_argument("--seed", type=int, default=0,
                          help="search + condition seed root")
    autotune.add_argument("--store",
                          default="autotune-results.sqlite",
                          help="SQLite result store (the evaluation "
                               "cache; killed searches resume from "
                               "it)")
    autotune.add_argument("--no-store", action="store_true",
                          help="disable memoization (every condition "
                               "executes)")
    parallelism = autotune.add_mutually_exclusive_group()
    parallelism.add_argument("--workers", type=int, default=1,
                             help="executor worker processes "
                                  "(default: inline)")
    parallelism.add_argument("--serial", action="store_true",
                             help="run inline in this process")
    autotune.add_argument("--json", metavar="FILE", default=None,
                          help="also write the machine-readable "
                               "report to FILE")
    autotune.add_argument("--quiet", action="store_true",
                          help="suppress per-condition progress "
                               "lines")


def _make_driver(args: argparse.Namespace) -> SearchDriver:
    if args.search == "random":
        return RandomSearch(samples=args.samples, seed=args.seed,
                            num_requests=args.requests)
    if args.search == "halving":
        return SuccessiveHalving(budget0=args.budget0, eta=args.eta,
                                 seed=args.seed, initial=args.initial)
    return GridSearch(num_requests=args.requests)


def cmd_autotune(args: argparse.Namespace) -> int:
    """Run one search invocation end to end."""
    from repro.api import experiment
    from repro.campaign.store import ResultStore
    from repro.config.presets import client_by_name
    from repro.errors import ReproError
    from repro.workloads.registry import workload_by_name

    try:
        if args.space:
            with open(args.space, "r", encoding="utf-8") as handle:
                space = SearchSpace.from_json(handle.read())
        else:
            space = space_from_tunable_args(args.tunable or [])
        definition = workload_by_name(args.workload)
        qps_list = tuple(
            args.qps if args.qps is not None
            else (definition.qps_sweep or (definition.default_qps,)))
        objective = CapacityObjective(
            qps_list=qps_list, qos_target_us=args.qos_p99,
            metric=args.metric)
        plan = (experiment(args.workload)
                .client(client_by_name(args.client))
                .build())
        driver = _make_driver(args)
        max_workers = 1 if args.serial else args.workers

        def progress(outcome: Any, completed: int, total: int) -> None:
            if args.quiet:
                return
            condition = outcome.spec
            timing = ("cached" if outcome.status == "hit"
                      else f"{outcome.elapsed_s:.2f}s")
            detail = (f" [{outcome.error}]"
                      if outcome.status == "failed" else "")
            print(f"[{completed}/{total}] {outcome.status:<6} "
                  f"{condition.condition_label} @ "
                  f"{condition.qps:g} ({timing}){detail}")

        if args.no_store:
            evaluator = CandidateEvaluator(
                plan, space, objective, runs=args.runs,
                base_seed=args.seed, store=None,
                max_workers=max_workers)
            result = driver.run(evaluator, progress=progress)
        else:
            with ResultStore(args.store) as store:
                evaluator = CandidateEvaluator(
                    plan, space, objective, runs=args.runs,
                    base_seed=args.seed, store=store,
                    max_workers=max_workers)
                result = driver.run(evaluator, progress=progress)
        if not args.quiet:
            print()
        print(render_tune_report(result))
        print()
        print(result.summary())
        if not args.no_store:
            print(f"store: {args.store}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(tune_report_dict(result), handle, indent=2,
                          sort_keys=True)
            print(f"report json: {args.json}")
        return 0 if result.best is not None else 1
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


__all__ = ["add_autotune_parser", "cmd_autotune",
           "parse_tunable_option", "space_from_tunable_args"]
