"""Closed-loop policy autotuner (ROADMAP item 4).

Searches the simulator's policy space -- hardware knobs, engine,
workers, cluster shape, service-graph topology, workload parameters --
for the configuration maximizing capacity under a QoS target.  The
pieces:

* :mod:`repro.tune.tunables` -- frozen, schema-validated tunable
  definitions (categorical / int-range / float-range / bool) over
  dotted :class:`~repro.api.ExperimentPlan` field paths, with
  did-you-mean errors, exact JSON round-trip, and stable content
  hashes.
* :mod:`repro.tune.space` -- a :class:`SearchSpace` composing
  tunables; candidates apply through plan-dict surgery and re-validate
  through the plan layer.
* :mod:`repro.tune.objective` -- :class:`CapacityObjective`: score =
  :attr:`~repro.core.provisioning.CapacityResult.best_capacity_qps`
  from a QoS sweep.
* :mod:`repro.tune.search` -- grid / seeded-random /
  successive-halving drivers over a
  :class:`CandidateEvaluator` that routes every evaluation through
  the campaign executor and memoizes it in the
  :class:`~repro.campaign.store.ResultStore` by content hash (killed
  searches resume; repeats are cache hits).
* :mod:`repro.tune.report` -- best config, score trajectory, and
  per-tunable sensitivity rendering.

The CLI verb is ``repro autotune`` (``repro tune`` remains the host
measurement-config advisor).
"""

from repro.tune.objective import (
    DEFAULT_QOS_TARGET_US,
    OBJECTIVE_METRICS,
    CapacityObjective,
)
from repro.tune.report import (
    render_tune_report,
    sensitivity,
    tune_report_dict,
)
from repro.tune.search import (
    SEARCH_DRIVERS,
    CandidateEvaluator,
    GridSearch,
    RandomSearch,
    SearchDriver,
    SuccessiveHalving,
    TrialEval,
    TuneResult,
    assignment_label,
    make_driver,
)
from repro.tune.space import SearchSpace
from repro.tune.tunables import (
    RESERVED_FIELDS,
    STATIC_FIELDS,
    BoolTunable,
    CategoricalTunable,
    FloatRangeTunable,
    IntRangeTunable,
    Tunable,
    as_tunable,
    validate_field,
)

__all__ = [
    "BoolTunable",
    "CandidateEvaluator",
    "CapacityObjective",
    "CategoricalTunable",
    "DEFAULT_QOS_TARGET_US",
    "FloatRangeTunable",
    "GridSearch",
    "IntRangeTunable",
    "OBJECTIVE_METRICS",
    "RESERVED_FIELDS",
    "RandomSearch",
    "SEARCH_DRIVERS",
    "STATIC_FIELDS",
    "SearchDriver",
    "SearchSpace",
    "SuccessiveHalving",
    "TrialEval",
    "TuneResult",
    "Tunable",
    "as_tunable",
    "assignment_label",
    "make_driver",
    "render_tune_report",
    "sensitivity",
    "tune_report_dict",
    "validate_field",
]
