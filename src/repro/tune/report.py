"""Tune reports: best config, trajectory, per-tunable sensitivity.

Renders a :class:`~repro.tune.search.TuneResult` with the analysis
layer's ascii machinery: a trial table, a best-so-far score trajectory
(:func:`~repro.analysis.ascii_plot.ascii_chart`), and a sensitivity
table that groups each candidate's final (largest-budget) score by
tunable value -- the spread between the best and worst value means is
a cheap main-effect estimate of how much each knob matters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.ascii_plot import ascii_chart
from repro.tune.search import TrialEval, TuneResult
from repro.tune.tunables import format_value


def _final_trials(result: TuneResult) -> List[TrialEval]:
    """Each candidate's scored trial at its largest budget."""
    by_label: Dict[str, TrialEval] = {}
    for trial in result.trials:
        if trial.score is None:
            continue
        best = by_label.get(trial.label)
        if best is None or trial.num_requests > best.num_requests:
            by_label[trial.label] = trial
    return list(by_label.values())


def sensitivity(result: TuneResult
                ) -> Dict[str, List[Tuple[str, float, int]]]:
    """Per-tunable main effects from the finished trials.

    Returns:
        tunable name -> ``[(value text, mean score, trial count)]``,
        values in grid order, computed over each candidate's
        largest-budget scored trial.  Empty when nothing scored.
    """
    finals = _final_trials(result)
    table: Dict[str, List[Tuple[str, float, int]]] = {}
    for tunable in result.space.tunables:
        rows: List[Tuple[str, float, int]] = []
        for value in tunable.grid_values():
            scores = [
                t.score for t in finals
                if (t.assignment.get(tunable.name) == value
                    and t.score is not None)]
            if scores:
                rows.append((format_value(value),
                             sum(scores) / len(scores), len(scores)))
        if rows:
            table[tunable.name] = rows
    return table


def _trajectory(result: TuneResult) -> List[Tuple[float, float]]:
    """(trial index, best-so-far score) for every scored trial."""
    points: List[Tuple[float, float]] = []
    best = float("-inf")
    for index, trial in enumerate(result.trials):
        if trial.score is None:
            continue
        best = max(best, trial.score)
        points.append((float(index), best))
    return points


def render_tune_report(result: TuneResult, width: int = 56,
                       title: str = "") -> str:
    """The full human-readable report for one search invocation."""
    lines: List[str] = [title or f"autotune report [{result.driver}]"]
    lines.append(f"objective: {result.objective.describe()}")
    lines.append(f"space ({len(result.space.tunables)} tunables):")
    for tunable in result.space.tunables:
        lines.append(f"  {tunable.describe()}")
    lines.append(
        f"budget: {result.charged_requests:,} / "
        f"{result.declared_budget:,} requests charged "
        f"({result.cache_hits} cached, {result.executed} executed, "
        f"{result.failed} failed conditions)")
    lines.append("")

    best: Optional[TrialEval] = result.best
    if best is None:
        lines.append("no successful trial -- every candidate failed")
    else:
        lines.append(
            f"best: {best.label} -> {best.score:,.0f} QPS "
            f"(runs x requests = {result.runs} x "
            f"{best.num_requests})")
        for name, value in sorted(best.assignment.items()):
            lines.append(f"  {name} = {format_value(value)}")
    lines.append("")

    lines.append("trials:")
    header = (f"  {'rung':>4} {'budget':>8} {'score':>12} "
              f"{'hit/run':>8}  label")
    lines.append(header)
    for trial in result.trials:
        score = (f"{trial.score:,.0f}" if trial.score is not None
                 else "FAILED")
        counts = f"{trial.cache_hits}/{trial.executed}"
        lines.append(
            f"  {trial.rung:>4} {trial.num_requests:>8} "
            f"{score:>12} {counts:>8}  {trial.label}")

    table = sensitivity(result)
    if table:
        lines.append("")
        lines.append("sensitivity (mean best-budget score by value):")
        for name, rows in table.items():
            means = [mean for _, mean, _ in rows]
            spread = max(means) - min(means)
            lines.append(f"  {name} (spread {spread:,.0f} QPS):")
            for text, mean, count in rows:
                lines.append(
                    f"    {text:<24} {mean:>12,.0f}  (n={count})")

    points = _trajectory(result)
    if len(points) >= 2:
        lines.append("")
        lines.append(ascii_chart(
            {"best-so-far": points}, width=width, height=10,
            title="score trajectory (by trial)", y_label="QPS"))
    return "\n".join(lines)


def tune_report_dict(result: TuneResult) -> Dict[str, Any]:
    """Machine-readable report: result dict + sensitivity rows."""
    data = result.to_dict()
    data["sensitivity"] = {
        name: [{"value": text, "mean_score": mean, "trials": count}
               for text, mean, count in rows]
        for name, rows in sensitivity(result).items()}
    return data
