"""The autotuner's objective: capacity under a QoS target.

One candidate configuration is scored by sweeping the plan over a
fixed QPS list, reducing each sweep point to the median of a latency
metric across runs (the same reduction the figure studies use), and
handing the resulting curve to :func:`capacity_under_qos` -- the score
is :attr:`CapacityResult.best_capacity_qps`, i.e. the interpolated QoS
crossing when the sweep brackets one, else the grid capacity.  Higher
is better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from repro.core.experiment import ExperimentResult
from repro.core.provisioning import CapacityResult, capacity_under_qos
from repro.errors import ExperimentError, SpecValidationError

#: Latency metrics an objective may target (per-run sample medians).
OBJECTIVE_METRICS: Tuple[str, ...] = (
    "avg", "p99", "true_avg", "true_p99")

#: The paper's memcached SLO, the default QoS target.
DEFAULT_QOS_TARGET_US = 400.0


def _metric_median(result: ExperimentResult, metric: str) -> float:
    accessors = {
        "avg": ExperimentResult.avg_samples,
        "p99": ExperimentResult.p99_samples,
        "true_avg": ExperimentResult.true_avg_samples,
        "true_p99": ExperimentResult.true_p99_samples,
    }
    return float(np.median(accessors[metric](result)))


@dataclass(frozen=True)
class CapacityObjective:
    """Score = capacity-under-QoS over a fixed load sweep.

    Attributes:
        qps_list: the sweep, ascending (deduplicated, validated > 0).
        qos_target_us: the latency bound.
        metric: which latency metric the bound applies to.
        interpolate: estimate the QoS crossing between grid points
            (the score is then :attr:`CapacityResult.best_capacity_qps`).
    """

    qps_list: Tuple[float, ...]
    qos_target_us: float = DEFAULT_QOS_TARGET_US
    metric: str = "p99"
    interpolate: bool = True

    def __post_init__(self) -> None:
        qps = tuple(sorted({float(q) for q in self.qps_list}))
        if not qps:
            raise SpecValidationError(
                "objective needs a non-empty qps sweep")
        if any(q <= 0 for q in qps):
            raise SpecValidationError(
                "objective qps values must be positive")
        object.__setattr__(self, "qps_list", qps)
        object.__setattr__(self, "qos_target_us",
                           float(self.qos_target_us))
        if self.qos_target_us <= 0:
            raise SpecValidationError(
                f"QoS target must be positive, got "
                f"{self.qos_target_us}")
        if self.metric not in OBJECTIVE_METRICS:
            raise SpecValidationError(
                f"unknown objective metric {self.metric!r}; expected "
                f"one of: " + ", ".join(OBJECTIVE_METRICS))

    # ------------------------------------------------------------------
    def latency(self, result: ExperimentResult) -> float:
        """One sweep point's scalar latency (median across runs)."""
        return _metric_median(result, self.metric)

    def capacity(self, results_by_qps: Mapping[float, ExperimentResult]
                 ) -> CapacityResult:
        """Run the capacity search over one candidate's sweep results."""
        missing = [q for q in self.qps_list if q not in results_by_qps]
        if missing:
            raise ExperimentError(
                "objective sweep is missing results at qps: "
                + ", ".join(f"{q:g}" for q in missing))
        latency_by_qps = {
            qps: self.latency(results_by_qps[qps])
            for qps in self.qps_list}
        return capacity_under_qos(
            latency_by_qps, self.qos_target_us, metric=self.metric,
            interpolate=self.interpolate)

    def score(self, results_by_qps: Mapping[float, ExperimentResult]
              ) -> float:
        """The scalar the drivers maximize."""
        return self.capacity(results_by_qps).best_capacity_qps

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form."""
        return {
            "qps_list": list(self.qps_list),
            "qos_target_us": self.qos_target_us,
            "metric": self.metric,
            "interpolate": self.interpolate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CapacityObjective":
        """Rebuild from the dict form (strict keys)."""
        allowed = ("qps_list", "qos_target_us", "metric", "interpolate")
        unknown = sorted(set(data) - set(allowed))
        if unknown:
            raise SpecValidationError(
                "unknown key(s) in objective: "
                + ", ".join(repr(k) for k in unknown))
        if "qps_list" not in data:
            raise SpecValidationError("objective is missing 'qps_list'")
        return cls(
            qps_list=tuple(float(q) for q in data["qps_list"]),
            qos_target_us=float(
                data.get("qos_target_us", DEFAULT_QOS_TARGET_US)),
            metric=str(data.get("metric", "p99")),
            interpolate=bool(data.get("interpolate", True)),
        )

    def describe(self) -> str:
        """One human line."""
        sweep = ", ".join(f"{q:g}" for q in self.qps_list)
        mode = "interpolated" if self.interpolate else "grid"
        return (f"maximize capacity @ {self.metric} <= "
                f"{self.qos_target_us:g}us ({mode}) over qps "
                f"[{sweep}]")
