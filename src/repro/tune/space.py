"""Search spaces: ordered tunable sets applied to experiment plans.

A :class:`SearchSpace` composes :class:`~repro.tune.tunables.Tunable`
definitions into the candidate grid a search driver walks.  The space
is pure data -- JSON round-trip, stable content hash -- and the only
way values reach a plan is :meth:`SearchSpace.apply`, which performs
section-level dict surgery on ``plan.to_dict()`` and rebuilds through
:meth:`ExperimentPlan.from_dict`, so every candidate is re-validated
by the same spec layer that guards hand-written plans (unknown
workload params, bad engine names, graph/cluster exclusivity all fail
with the plan layer's own errors before anything simulates).
"""

from __future__ import annotations

import itertools
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.api.specs import ExperimentPlan
from repro.config.serialize import canonical_json, content_hash
from repro.errors import SpecValidationError
from repro.tune.tunables import Tunable, as_tunable, thaw


@dataclass(frozen=True)
class SearchSpace:
    """An ordered, duplicate-free set of tunables.

    Grid order is the cartesian product in declaration order (last
    tunable fastest), so two processes constructing the same space
    enumerate candidates identically -- the property the determinism
    and resume guarantees stand on.
    """

    tunables: Tuple[Tunable, ...]

    def __post_init__(self) -> None:
        tunables = tuple(self.tunables)
        if not tunables:
            raise SpecValidationError(
                "a search space needs at least one tunable")
        for attr in ("name", "field"):
            seen: Dict[str, str] = {}
            for tunable in tunables:
                value = getattr(tunable, attr)
                if value in seen:
                    raise SpecValidationError(
                        f"duplicate tunable {attr} {value!r}")
                seen[value] = value
        object.__setattr__(self, "tunables", tunables)

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """Tunable names, in declaration order."""
        return tuple(t.name for t in self.tunables)

    def size(self) -> int:
        """Number of grid candidates (product of domain sizes)."""
        total = 1
        for tunable in self.tunables:
            total *= len(tunable.grid_values())
        return total

    def grid(self) -> List[Dict[str, Any]]:
        """Every grid assignment, in deterministic product order."""
        domains = [t.grid_values() for t in self.tunables]
        return [dict(zip(self.names, combo))
                for combo in itertools.product(*domains)]

    def sample(self, rng: random.Random) -> Dict[str, Any]:
        """One random assignment (each tunable draws independently)."""
        return {t.name: t.sample(rng) for t in self.tunables}

    def validate_assignment(self, assignment: Mapping[str, Any]) -> None:
        """Check *assignment* covers every tunable with in-domain values."""
        expected = set(self.names)
        got = set(assignment)
        if got != expected:
            missing = ", ".join(sorted(expected - got)) or "-"
            extra = ", ".join(sorted(got - expected)) or "-"
            raise SpecValidationError(
                f"assignment does not match the space "
                f"(missing: {missing}; unknown: {extra})")
        for tunable in self.tunables:
            value = assignment[tunable.name]
            if not tunable.contains(value):
                raise SpecValidationError(
                    f"value {value!r} is outside tunable "
                    f"{tunable.name!r}'s domain")

    # ------------------------------------------------------------------
    def apply(self, plan: ExperimentPlan,
              assignment: Mapping[str, Any]) -> ExperimentPlan:
        """Build the candidate plan for one assignment.

        Values land in the plan's dict form and the result is rebuilt
        through :meth:`ExperimentPlan.from_dict`, so plan-layer
        validation runs on every candidate.
        """
        self.validate_assignment(assignment)
        data = plan.to_dict()
        for tunable in self.tunables:
            _set_plan_field(data, plan, tunable.field,
                            thaw(assignment[tunable.name]))
        return ExperimentPlan.from_dict(data)

    def validate_against(self, plan: ExperimentPlan) -> None:
        """Prove the space is applicable to *plan* before any search.

        Applies the first grid candidate, which exercises every
        tunable's field path (including ``workload.<param>`` registry
        validation and graph preset resolution) without simulating
        anything.
        """
        self.apply(plan, {t.name: t.grid_values()[0]
                          for t in self.tunables})

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form."""
        return {"tunables": [t.to_dict() for t in self.tunables]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpace":
        """Rebuild a space from its dict form (strict keys)."""
        unknown = sorted(set(data) - {"tunables"})
        if unknown:
            raise SpecValidationError(
                "unknown key(s) in search space: "
                + ", ".join(repr(k) for k in unknown))
        raw = data.get("tunables")
        if not isinstance(raw, (list, tuple)):
            raise SpecValidationError(
                "search space needs a 'tunables' list")
        return cls(tunables=tuple(as_tunable(item) for item in raw))

    def to_json(self, indent: int = 2) -> str:
        """JSON text form (what a ``--space`` file contains)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SearchSpace":
        """Rebuild a space from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(
                f"search space is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def content_hash(self) -> str:
        """Stable identity of the space definition."""
        return content_hash(self.to_dict())

    def assignment_key(self, assignment: Mapping[str, Any]) -> str:
        """Canonical JSON identity of one assignment (dedup key)."""
        return canonical_json(
            {name: thaw(assignment[name]) for name in self.names})

    def describe(self) -> str:
        """Human summary: one line per tunable plus the grid size."""
        lines = [t.describe() for t in self.tunables]
        lines.append(f"grid: {self.size()} candidates")
        return "\n".join(lines)


def _set_plan_field(data: Dict[str, Any], plan: ExperimentPlan,
                    field: str, value: Any) -> None:
    """Write one tunable value into a plan dict, in place.

    The dict is ``plan.to_dict()``, which omits default sections
    (single-server cluster, default policy knobs) -- absent sections
    are materialized before patching so the write always lands.
    """
    if field == "graph":
        if isinstance(value, str):
            from repro.graph.presets import graph_preset
            value = graph_preset(value).to_dict()
        data["graph"] = value
        # A graph candidate carries its own topology; the plan layer
        # rejects graph + non-default cluster.
        data.pop("cluster", None)
        return
    section, _, rest = field.partition(".")
    if section == "workload":
        data["workload"].setdefault("params", {})[rest] = value
    elif section == "hardware":
        target, _, knob = rest.partition(".")
        config = dict(data["hardware"][target])
        config[knob] = value
        data["hardware"][target] = config
    elif section == "policy":
        data.setdefault("policy", {})[rest] = value
    elif section == "cluster":
        cluster = data.setdefault("cluster", plan.cluster.to_dict())
        cluster[rest] = value
    else:  # pragma: no cover -- validate_field guarantees the sections
        raise SpecValidationError(
            f"unroutable tunable field {field!r}")
