"""Declarative, schema-validated tunable definitions.

A :class:`Tunable` names one :class:`~repro.api.ExperimentPlan` field
the autotuner may vary, plus the set of values it may take -- the
validated-tuning-item idiom: every tunable is a frozen dataclass whose
constructor rejects malformed definitions (unknown plan fields get a
did-you-mean, empty domains and inverted ranges fail loudly), whose
dict form round-trips exactly through JSON, and whose
:meth:`~Tunable.content_hash` is stable across processes and sessions.

Four kinds cover the plan's policy space:

========== ======================================================
kind       domain
========== ======================================================
categorical an explicit value list (LB policy, governor, C-states)
int-range   ``low..high`` inclusive, with a stride (nodes, workers)
float-range ``[low, high]`` with a fixed grid resolution
bool        on/off knobs (SMT, turbo, tickless)
========== ======================================================

Fields are dotted plan paths (``hardware.server.smt``,
``cluster.lb_policy``, ``workload.<param>``, ``graph``); see
:data:`STATIC_FIELDS`.  Fields the search machinery itself owns --
``load.qps`` (swept by the capacity objective) and the run-policy
bookkeeping (``policy.runs``, seeds, sinks) -- are reserved and
rejected with an explanation.
"""

from __future__ import annotations

import difflib
import random
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Tuple

from repro.config.serialize import canonical_json, content_hash
from repro.errors import SpecValidationError

#: The seven hardware knobs a HardwareConfig exposes, by dict key.
HARDWARE_KNOBS: Tuple[str, ...] = (
    "cstates", "frequency_driver", "frequency_governor",
    "turbo", "smt", "uncore", "tickless")

#: Every statically-known tunable plan field.  ``workload.<param>``
#: fields are also legal; the parameter name is validated against the
#: workload registry when the space is bound to a plan.
STATIC_FIELDS: Tuple[str, ...] = tuple(
    [f"hardware.client.{knob}" for knob in HARDWARE_KNOBS]
    + [f"hardware.server.{knob}" for knob in HARDWARE_KNOBS]
    + ["policy.engine", "policy.workers",
       "cluster.nodes", "cluster.replication", "cluster.shards",
       "cluster.fanout", "cluster.quorum", "cluster.lb_policy",
       "graph"])

#: Plan fields the search machinery owns, with the reason each is
#: off-limits to tunable definitions.
RESERVED_FIELDS: Dict[str, str] = {
    "load.qps": "the capacity objective sweeps load.qps itself",
    "load.num_requests": "the search driver owns the per-trial "
                         "request budget",
    "policy.runs": "repetitions are an evaluator setting, not a "
                   "tunable",
    "policy.base_seed": "seeds are derived per condition; tuning "
                        "them would break determinism",
    "policy.label": "labels are derived from the candidate "
                    "assignment",
    "policy.sink": "the telemetry sink does not change capacity",
    "policy.trace": "tracing is an observability toggle",
    "policy.metrics": "metrics registration is an observability "
                      "toggle",
}


def validate_field(field: str) -> str:
    """Check *field* names a tunable plan path; did-you-mean on typos.

    ``workload.<param>`` passes for any non-empty ``<param>`` -- the
    parameter itself is checked against the workload registry when a
    :class:`~repro.tune.space.SearchSpace` is bound to a plan.
    """
    name = str(field).strip()
    if not name:
        raise SpecValidationError("tunable field must be non-empty")
    if name in RESERVED_FIELDS:
        raise SpecValidationError(
            f"field {name!r} is not tunable: {RESERVED_FIELDS[name]}")
    if name in STATIC_FIELDS:
        return name
    if name.startswith("workload.") and name[len("workload."):]:
        return name
    candidates = list(STATIC_FIELDS) + ["workload.<param>"]
    close = difflib.get_close_matches(name, candidates, n=1)
    hint = f" -- did you mean {close[0]!r}?" if close else ""
    raise SpecValidationError(
        f"unknown tunable field {name!r}{hint}")


def _freeze(value: Any) -> Any:
    """Lists become tuples so values sit in frozen dataclasses."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze`: tuples back to JSON-shaped lists."""
    if isinstance(value, tuple):
        return [thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class Tunable:
    """Base of every tunable: a display name bound to one plan field.

    Attributes:
        name: the tunable's handle in assignments and reports; the
            CLI defaults it to the field path.
        field: dotted plan path (see :data:`STATIC_FIELDS`).
    """

    name: str
    field: str

    KIND: ClassVar[str] = ""

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise SpecValidationError("tunable name must be non-empty")
        object.__setattr__(self, "name", str(self.name).strip())
        object.__setattr__(self, "field", validate_field(self.field))

    # -- domain protocol (subclasses implement) ------------------------
    def grid_values(self) -> Tuple[Any, ...]:
        """The full (finite) value grid, in declaration order."""
        raise NotImplementedError

    def sample(self, rng: random.Random) -> Any:
        """One value drawn from the domain with *rng*."""
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        """True when *value* lies in the domain."""
        raise NotImplementedError

    def _payload(self) -> Dict[str, Any]:
        """Kind-specific dict fields (subclasses implement)."""
        raise NotImplementedError

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form; exact inverse of :func:`as_tunable`."""
        data: Dict[str, Any] = {
            "kind": self.KIND, "name": self.name, "field": self.field}
        data.update(self._payload())
        return data

    def content_hash(self) -> str:
        """Stable identity of this tunable definition."""
        return content_hash(self.to_dict())

    def describe(self) -> str:
        """One human line: name, field, domain."""
        return (f"{self.name}: {self.field} "
                f"[{self.KIND}] {self._domain_text()}")

    def _domain_text(self) -> str:
        values = ", ".join(
            format_value(v) for v in self.grid_values())
        return "{" + values + "}"


@dataclass(frozen=True)
class CategoricalTunable(Tunable):
    """An explicit, ordered list of candidate values.

    Values must be JSON-serializable (lists are stored as tuples and
    thawed back on serialization); duplicates are rejected so the grid
    size is honest.
    """

    values: Tuple[Any, ...] = ()

    KIND: ClassVar[str] = "categorical"

    def __post_init__(self) -> None:
        super().__post_init__()
        frozen = tuple(_freeze(v) for v in self.values)
        if not frozen:
            raise SpecValidationError(
                f"tunable {self.name!r} needs at least one value")
        try:
            canonical_json([thaw(v) for v in frozen])
        except (TypeError, ValueError) as exc:
            raise SpecValidationError(
                f"tunable {self.name!r} has a non-JSON value: {exc}"
            ) from exc
        seen: List[Any] = []
        for value in frozen:
            if value in seen:
                raise SpecValidationError(
                    f"tunable {self.name!r} repeats value "
                    f"{format_value(value)!r}")
            seen.append(value)
        object.__setattr__(self, "values", frozen)

    def grid_values(self) -> Tuple[Any, ...]:
        return self.values

    def sample(self, rng: random.Random) -> Any:
        return self.values[rng.randrange(len(self.values))]

    def contains(self, value: Any) -> bool:
        return _freeze(value) in self.values

    def _payload(self) -> Dict[str, Any]:
        return {"values": [thaw(v) for v in self.values]}


@dataclass(frozen=True)
class BoolTunable(Tunable):
    """An on/off knob; the grid is ``(False, True)``."""

    KIND: ClassVar[str] = "bool"

    def grid_values(self) -> Tuple[Any, ...]:
        return (False, True)

    def sample(self, rng: random.Random) -> Any:
        return bool(rng.randrange(2))

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)

    def _payload(self) -> Dict[str, Any]:
        return {}


@dataclass(frozen=True)
class IntRangeTunable(Tunable):
    """Integers ``low..high`` inclusive, strided by ``step``."""

    low: int = 0
    high: int = 0
    step: int = 1

    KIND: ClassVar[str] = "int-range"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "low", int(self.low))
        object.__setattr__(self, "high", int(self.high))
        object.__setattr__(self, "step", int(self.step))
        if self.step < 1:
            raise SpecValidationError(
                f"tunable {self.name!r}: step must be >= 1, "
                f"got {self.step}")
        if self.high < self.low:
            raise SpecValidationError(
                f"tunable {self.name!r}: empty range "
                f"{self.low}..{self.high}")

    def grid_values(self) -> Tuple[Any, ...]:
        return tuple(range(self.low, self.high + 1, self.step))

    def sample(self, rng: random.Random) -> Any:
        grid = self.grid_values()
        return grid[rng.randrange(len(grid))]

    def contains(self, value: Any) -> bool:
        return (isinstance(value, int) and not isinstance(value, bool)
                and self.low <= value <= self.high
                and (value - self.low) % self.step == 0)

    def _payload(self) -> Dict[str, Any]:
        return {"low": self.low, "high": self.high, "step": self.step}

    def _domain_text(self) -> str:
        stride = f"..{self.step}" if self.step != 1 else ""
        return f"{self.low}..{self.high}{stride}"


@dataclass(frozen=True)
class FloatRangeTunable(Tunable):
    """Floats in ``[low, high]``; the grid is ``points`` even steps.

    Random search samples the continuous interval; grid search (and
    successive halving's rung 0) uses the ``points``-long lattice.
    """

    low: float = 0.0
    high: float = 0.0
    points: int = 5

    KIND: ClassVar[str] = "float-range"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "low", float(self.low))
        object.__setattr__(self, "high", float(self.high))
        object.__setattr__(self, "points", int(self.points))
        if self.points < 2:
            raise SpecValidationError(
                f"tunable {self.name!r}: points must be >= 2, "
                f"got {self.points}")
        if self.high <= self.low:
            raise SpecValidationError(
                f"tunable {self.name!r}: empty range "
                f"[{self.low}, {self.high}]")

    def grid_values(self) -> Tuple[Any, ...]:
        span = self.high - self.low
        return tuple(
            self.low + span * i / (self.points - 1)
            for i in range(self.points))

    def sample(self, rng: random.Random) -> Any:
        return rng.uniform(self.low, self.high)

    def contains(self, value: Any) -> bool:
        return (isinstance(value, (int, float))
                and not isinstance(value, bool)
                and self.low <= float(value) <= self.high)

    def _payload(self) -> Dict[str, Any]:
        return {"low": self.low, "high": self.high,
                "points": self.points}

    def _domain_text(self) -> str:
        return f"[{self.low:g}, {self.high:g}] x{self.points}"


#: kind string -> tunable class, the :func:`as_tunable` dispatch.
TUNABLE_KINDS: Dict[str, type] = {
    CategoricalTunable.KIND: CategoricalTunable,
    BoolTunable.KIND: BoolTunable,
    IntRangeTunable.KIND: IntRangeTunable,
    FloatRangeTunable.KIND: FloatRangeTunable,
}

#: Dict keys each kind accepts (strict: anything else is an error).
_KIND_KEYS: Dict[str, Tuple[str, ...]] = {
    "categorical": ("kind", "name", "field", "values"),
    "bool": ("kind", "name", "field"),
    "int-range": ("kind", "name", "field", "low", "high", "step"),
    "float-range": ("kind", "name", "field", "low", "high", "points"),
}


def as_tunable(data: Mapping[str, Any]) -> Tunable:
    """Rebuild a tunable from its dict form (strict keys, did-you-mean)."""
    kind = str(data.get("kind", ""))
    if kind not in TUNABLE_KINDS:
        close = difflib.get_close_matches(
            kind, list(TUNABLE_KINDS), n=1)
        hint = f" -- did you mean {close[0]!r}?" if close else ""
        raise SpecValidationError(
            f"unknown tunable kind {kind!r}{hint}; expected one of: "
            + ", ".join(sorted(TUNABLE_KINDS)))
    allowed = _KIND_KEYS[kind]
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        hints = []
        for key in unknown:
            close = difflib.get_close_matches(key, allowed, n=1)
            hints.append(f"{key!r}"
                         + (f" (did you mean {close[0]!r}?)"
                            if close else ""))
        raise SpecValidationError(
            f"unknown key(s) in {kind} tunable: " + ", ".join(hints))
    for key in ("name", "field"):
        if key not in data:
            raise SpecValidationError(
                f"{kind} tunable is missing {key!r}")
    kwargs = {key: data[key] for key in allowed
              if key != "kind" and key in data}
    return TUNABLE_KINDS[kind](**kwargs)


def format_value(value: Any) -> str:
    """Canonical short text for one tunable value (labels, reports).

    Booleans render ``on``/``off``, floats use ``%g``, lists/tuples
    join with ``+`` -- compact enough for condition labels, stable
    enough to key sensitivity groupings.
    """
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (list, tuple)):
        return "+".join(format_value(v) for v in value)
    return str(value)
