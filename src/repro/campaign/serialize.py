"""Serialization for campaign specs and results.

Everything a campaign touches must survive two boundaries: the pickle
boundary into worker processes and the JSON boundary into the result
store.  This module provides the dict round-trips for
:class:`~repro.config.knobs.HardwareConfig`,
:class:`~repro.core.testbed.RunMetrics` and
:class:`~repro.core.experiment.ExperimentResult`, plus the canonical
JSON encoding that condition content hashes are computed over.

Canonical form: sorted keys, no whitespace, enums as their ``.value``
strings, C-states as a sorted list.  Two specs with equal canonical
JSON are the same condition, regardless of which process or session
built them.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Union

from repro.config.knobs import (
    FrequencyDriver,
    FrequencyGovernor,
    HardwareConfig,
    UncorePolicy,
)
from repro.core.experiment import ExperimentResult
from repro.core.testbed import RunMetrics
from repro.errors import ExperimentError


def canonical_json(data: Any) -> str:
    """The canonical (sorted, compact) JSON encoding of *data*."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def content_hash(data: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of *data*."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


# ----------------------------------------------------------- HardwareConfig
def hardware_config_to_dict(config: HardwareConfig) -> Dict[str, Any]:
    """Flatten a :class:`HardwareConfig` into plain JSON types."""
    return {
        "name": config.name,
        "cstates": sorted(config.enabled_cstates),
        "frequency_driver": config.frequency_driver.value,
        "frequency_governor": config.frequency_governor.value,
        "turbo": config.turbo,
        "smt": config.smt,
        "uncore": config.uncore.value,
        "tickless": config.tickless,
    }


def hardware_config_from_dict(
        data: Union[str, Dict[str, Any]]) -> HardwareConfig:
    """Rebuild a :class:`HardwareConfig` from its dict form.

    A plain string is treated as a preset name: ``"LP"``/``"HP"`` (the
    Table II clients) or ``"baseline"``/``"server-baseline"``.
    """
    if isinstance(data, str):
        return _preset_by_name(data)
    try:
        return HardwareConfig(
            name=str(data["name"]),
            enabled_cstates=frozenset(data["cstates"]),
            frequency_driver=FrequencyDriver(data["frequency_driver"]),
            frequency_governor=FrequencyGovernor(
                data["frequency_governor"]),
            turbo=bool(data["turbo"]),
            smt=bool(data["smt"]),
            uncore=UncorePolicy(data["uncore"]),
            tickless=bool(data["tickless"]),
        )
    except (KeyError, ValueError) as exc:
        raise ExperimentError(
            f"invalid hardware config dict: {exc}") from exc


def _preset_by_name(name: str) -> HardwareConfig:
    from repro.config.presets import SERVER_BASELINE, client_by_name

    if name.lower() in ("baseline", "server-baseline"):
        return SERVER_BASELINE
    try:
        return client_by_name(name)
    except ValueError as exc:
        raise ExperimentError(str(exc)) from None


# --------------------------------------------------------------- RunMetrics
def run_metrics_to_dict(metrics: RunMetrics) -> Dict[str, Any]:
    """Flatten one run's summary into plain JSON types."""
    return {
        "avg_us": metrics.avg_us,
        "p99_us": metrics.p99_us,
        "true_avg_us": metrics.true_avg_us,
        "true_p99_us": metrics.true_p99_us,
        "requests": metrics.requests,
        "seed": metrics.seed,
        "server_utilization": metrics.server_utilization,
    }


def run_metrics_from_dict(data: Dict[str, Any]) -> RunMetrics:
    """Rebuild a :class:`RunMetrics` from its dict form."""
    try:
        return RunMetrics(
            avg_us=float(data["avg_us"]),
            p99_us=float(data["p99_us"]),
            true_avg_us=float(data["true_avg_us"]),
            true_p99_us=float(data["true_p99_us"]),
            requests=int(data["requests"]),
            seed=int(data["seed"]),
            server_utilization=float(data["server_utilization"]),
        )
    except KeyError as exc:
        raise ExperimentError(
            f"invalid run-metrics dict: missing {exc}") from exc


# --------------------------------------------------------- ExperimentResult
def experiment_result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Flatten an :class:`ExperimentResult` into plain JSON types.

    JSON float encoding uses ``repr``, which round-trips IEEE doubles
    exactly, so a stored result is bit-identical to a fresh one.
    """
    return {
        "label": result.label,
        "workload": result.workload,
        "qps": result.qps,
        "runs": [run_metrics_to_dict(run) for run in result.runs],
        "metadata": dict(result.metadata),
    }


def experiment_result_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its dict form."""
    try:
        return ExperimentResult(
            label=str(data["label"]),
            workload=str(data["workload"]),
            qps=float(data["qps"]),
            runs=[run_metrics_from_dict(run) for run in data["runs"]],
            metadata=dict(data.get("metadata", {})),
        )
    except KeyError as exc:
        raise ExperimentError(
            f"invalid experiment-result dict: missing {exc}") from exc
