"""Serialization for campaign specs and results.

Everything a campaign touches must survive two boundaries: the pickle
boundary into worker processes and the JSON boundary into the result
store.  This module provides the dict round-trips for
:class:`~repro.core.testbed.RunMetrics` and
:class:`~repro.core.experiment.ExperimentResult`, and re-exports the
lower-level :class:`~repro.config.knobs.HardwareConfig` round-trip
and canonical-JSON/hash primitives from
:mod:`repro.config.serialize` (shared with the :mod:`repro.api` spec
layer).

Canonical form: sorted keys, no whitespace, enums as their ``.value``
strings, C-states as a sorted list.  Two specs with equal canonical
JSON are the same condition, regardless of which process or session
built them.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.config.serialize import (
    canonical_json,
    content_hash,
    hardware_config_from_dict,
    hardware_config_to_dict,
)
from repro.core.experiment import ExperimentResult
from repro.core.testbed import RunMetrics
from repro.errors import ExperimentError

__all__ = [
    # Low-level primitives, re-exported from repro.config.serialize
    # (moved there so the repro.api spec layer can hash and
    # round-trip hardware configs without touching this package).
    "canonical_json",
    "content_hash",
    "hardware_config_from_dict",
    "hardware_config_to_dict",
    # Result serialization, defined here.
    "run_metrics_to_dict",
    "run_metrics_from_dict",
    "experiment_result_to_dict",
    "experiment_result_from_dict",
]


# --------------------------------------------------------------- RunMetrics
def run_metrics_to_dict(metrics: RunMetrics) -> Dict[str, Any]:
    """Flatten one run's summary into plain JSON types.

    ``node_utilizations`` and ``obs_metrics`` are emitted only when
    non-empty (cluster runs / observed runs), so single-server
    unobserved payloads (and every result already in a store) keep
    their exact historical byte form.
    """
    data = {
        "avg_us": metrics.avg_us,
        "p99_us": metrics.p99_us,
        "true_avg_us": metrics.true_avg_us,
        "true_p99_us": metrics.true_p99_us,
        "requests": metrics.requests,
        "seed": metrics.seed,
        "server_utilization": metrics.server_utilization,
    }
    if metrics.node_utilizations:
        data["node_utilizations"] = list(metrics.node_utilizations)
    if metrics.obs_metrics:
        data["obs_metrics"] = [[name, value]
                               for name, value in metrics.obs_metrics]
    return data


def run_metrics_from_dict(data: Dict[str, Any]) -> RunMetrics:
    """Rebuild a :class:`RunMetrics` from its dict form."""
    try:
        return RunMetrics(
            avg_us=float(data["avg_us"]),
            p99_us=float(data["p99_us"]),
            true_avg_us=float(data["true_avg_us"]),
            true_p99_us=float(data["true_p99_us"]),
            requests=int(data["requests"]),
            seed=int(data["seed"]),
            server_utilization=float(data["server_utilization"]),
            node_utilizations=tuple(
                float(u) for u in data.get("node_utilizations", ())),
            obs_metrics=tuple(
                (str(name), float(value))
                for name, value in data.get("obs_metrics", ())),
        )
    except KeyError as exc:
        raise ExperimentError(
            f"invalid run-metrics dict: missing {exc}") from exc


# --------------------------------------------------------- ExperimentResult
def experiment_result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Flatten an :class:`ExperimentResult` into plain JSON types.

    JSON float encoding uses ``repr``, which round-trips IEEE doubles
    exactly, so a stored result is bit-identical to a fresh one.
    """
    return {
        "label": result.label,
        "workload": result.workload,
        "qps": result.qps,
        "runs": [run_metrics_to_dict(run) for run in result.runs],
        "metadata": dict(result.metadata),
    }


def experiment_result_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its dict form."""
    try:
        return ExperimentResult(
            label=str(data["label"]),
            workload=str(data["workload"]),
            qps=float(data["qps"]),
            runs=[run_metrics_from_dict(run) for run in data["runs"]],
            metadata=dict(data.get("metadata", {})),
        )
    except KeyError as exc:
        raise ExperimentError(
            f"invalid experiment-result dict: missing {exc}") from exc
