"""Declarative campaign specifications.

A *campaign* is the paper's methodology written down as data: a
cartesian sweep of workloads x client configurations x server knob
conditions x offered loads, each cell repeated N times from a
deterministic seed block.  :class:`CampaignSpec` describes the sweep;
:meth:`CampaignSpec.expand` flattens it into an ordered list of
:class:`ConditionSpec` -- one experiment each -- with stable content
hashes that key the result store and make re-runs, resumes and
cross-campaign sharing possible.

Specs are data, not code: :meth:`CampaignSpec.from_dict` accepts plain
dicts/JSON with preset shorthands (clients by Table II name, server
conditions by knob), so a campaign can live in a ``.json`` file next
to the figures it feeds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:
    from repro.api.specs import ExperimentPlan

from repro.campaign.serialize import (
    content_hash,
    hardware_config_from_dict,
    hardware_config_to_dict,
)
from repro.cluster.spec import ClusterSpec, as_cluster_spec
from repro.config.knobs import HardwareConfig
from repro.config.presets import (
    HP_CLIENT,
    LP_CLIENT,
    server_with_c1e,
    server_with_smt,
)
from repro.core.experiment import DEFAULT_RUNS
from repro.errors import ExperimentError
from repro.graph.spec import ServiceGraphSpec, as_graph_spec
from repro.loadgen.interarrival import ArrivalSpec, as_arrival_spec
from repro.sim.kernel import DEFAULT_ENGINE, validate_engine_name
from repro.sim.random import _stable_name_key
from repro.workloads.registry import (
    UNIVERSAL_BUILDER_PARAMS,
    find_workload,
)

#: The default client sweep: both Table II configurations.
DEFAULT_CLIENTS: Dict[str, HardwareConfig] = {
    "LP": LP_CLIENT, "HP": HP_CLIENT}


def _normalize_extra(extra) -> Dict[str, Any]:
    """Canonicalize extra builder kwargs for hashing.

    JSON has one number type, so ``{"added_delay_us": 200}`` and
    ``{"added_delay_us": 200.0}`` must be the *same* condition --
    otherwise a spec file written with integer literals would miss
    every store row a preset-built campaign produced.
    """
    out: Dict[str, Any] = {}
    for key, value in dict(extra).items():
        if isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        out[str(key)] = value
    return out


def cell_seed(base_seed: int, client: str, condition: str,
              qps: float) -> int:
    """Deterministic, condition-unique seed block for one grid cell.

    Derived from the cell's identity (not its position in the sweep),
    so adding or removing QPS points never perturbs other cells' seeds
    -- the property that makes store hits and resumed campaigns exact.
    """
    key = _stable_name_key(f"{client}/{condition}/{qps:g}")
    return base_seed + (key % 1_000_003) * 10_000


@dataclass(frozen=True)
class ConditionSpec:
    """One fully-resolved experimental condition.

    Attributes:
        workload: registered workload name (see
            :mod:`repro.workloads.registry`).
        client_label: client sweep label, e.g. ``"LP"``.
        client_config: the client hardware configuration.
        condition_label: server condition label, e.g. ``"SMToff"``.
        server_config: the server hardware configuration.
        qps: offered load.
        runs: repetitions (the paper: 50).
        num_requests: requests per run.
        base_seed: first root seed of this condition's seed block.
        extra: extra builder kwargs as sorted ``(name, value)`` pairs
            (e.g. the synthetic workload's ``added_delay_us``).
        cluster: server-side topology, or ``None`` for the paper's
            single-server testbed.  A default (single-server) spec is
            normalized to ``None`` so the condition's content hash --
            the result-store memoization key -- is canonical: the
            same deployment always produces the same key, and any
            non-default cluster field (nodes, lb_policy, shards, ...)
            produces a distinct one.
        engine: event-loop engine name, or ``None`` for the reference
            loop.  Normalized exactly like ``cluster``: naming the
            default engine explicitly is stored as ``None`` and
            omitted from the dict form, so every pre-engine condition
            hash -- and every store row keyed by one -- is unchanged.
        graph: multi-tier service-graph topology, or ``None`` for the
            cluster / single-server paths.  Omitted from the dict form
            when ``None``, preserving every pre-graph condition hash.
        arrival: time-varying arrival shape, or ``None`` for the
            stock Poisson process (the default spec normalizes to
            ``None``, same canonicalization as ``cluster``).
        workers: shard count for the sharded-execution path, or
            ``None`` for a plain single-process run.  ``workers=1``
            normalizes to ``None`` and is omitted from the dict form,
            so every pre-parallel condition hash is unchanged; the
            autotuner uses this field to search ``policy.workers``.
    """

    workload: str
    client_label: str
    client_config: HardwareConfig
    condition_label: str
    server_config: HardwareConfig
    qps: float
    runs: int
    num_requests: int
    base_seed: int
    extra: Tuple[Tuple[str, Any], ...] = ()
    cluster: Optional[ClusterSpec] = None
    engine: Optional[str] = None
    graph: Optional[ServiceGraphSpec] = None
    arrival: Optional[ArrivalSpec] = None
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "extra",
            tuple(sorted(_normalize_extra(dict(self.extra)).items())))
        if self.cluster is not None:
            cluster = as_cluster_spec(self.cluster)
            object.__setattr__(
                self, "cluster",
                None if cluster.is_single_server else cluster)
        if self.engine is not None:
            engine = validate_engine_name(self.engine)
            object.__setattr__(
                self, "engine",
                None if engine == DEFAULT_ENGINE else engine)
        object.__setattr__(self, "graph", as_graph_spec(self.graph))
        object.__setattr__(self, "arrival",
                           as_arrival_spec(self.arrival))
        if self.workers is not None:
            workers = int(self.workers)
            if workers < 1:
                raise ExperimentError(
                    f"workers must be >= 1, got {workers}")
            object.__setattr__(self, "workers",
                               None if workers == 1 else workers)
        if self.graph is not None and self.cluster is not None:
            raise ExperimentError(
                "a condition deploys either a service graph or a "
                "cluster, not both")

    @property
    def label(self) -> str:
        """The condition's series label, e.g. ``"LP-SMToff"``."""
        return f"{self.client_label}-{self.condition_label}"

    def extra_kwargs(self) -> Dict[str, Any]:
        """The extra builder kwargs as a dict."""
        return dict(self.extra)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the hash input and pickle payload).

        The cluster key appears only for non-default topologies, so
        every single-server condition hash -- and therefore every
        result already sitting in a store -- is unchanged.
        """
        data = {
            "workload": self.workload,
            "client_label": self.client_label,
            "client_config": hardware_config_to_dict(self.client_config),
            "condition_label": self.condition_label,
            "server_config": hardware_config_to_dict(self.server_config),
            "qps": self.qps,
            "runs": self.runs,
            "num_requests": self.num_requests,
            "base_seed": self.base_seed,
            "extra": dict(self.extra),
        }
        if self.cluster is not None:
            data["cluster"] = self.cluster.to_dict()
        if self.engine is not None:
            data["engine"] = self.engine
        if self.graph is not None:
            data["graph"] = self.graph.to_dict()
        if self.arrival is not None:
            data["arrival"] = self.arrival.to_dict()
        if self.workers is not None:
            data["workers"] = self.workers
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConditionSpec":
        """Rebuild a condition from its dict form."""
        try:
            return cls(
                workload=str(data["workload"]),
                client_label=str(data["client_label"]),
                client_config=hardware_config_from_dict(
                    data["client_config"]),
                condition_label=str(data["condition_label"]),
                server_config=hardware_config_from_dict(
                    data["server_config"]),
                qps=float(data["qps"]),
                runs=int(data["runs"]),
                num_requests=int(data["num_requests"]),
                base_seed=int(data["base_seed"]),
                extra=tuple(sorted(dict(data.get("extra", {})).items())),
                cluster=(ClusterSpec.from_dict(data["cluster"])
                         if "cluster" in data else None),
                engine=data.get("engine"),
                graph=(ServiceGraphSpec.from_dict(data["graph"])
                       if "graph" in data else None),
                arrival=(ArrivalSpec.from_dict(data["arrival"])
                         if "arrival" in data else None),
                workers=(int(data["workers"])
                         if "workers" in data else None),
            )
        except KeyError as exc:
            raise ExperimentError(
                f"invalid condition spec: missing {exc}") from exc

    def content_hash(self) -> str:
        """Stable identity of this condition across processes/sessions."""
        return content_hash(self.to_dict())

    def to_plan(self) -> "ExperimentPlan":
        """Compile this condition into an :class:`~repro.api.ExperimentPlan`.

        The plan is what actually executes -- executor workers receive
        plans, not label/kwargs tuples.  ``warmup_fraction``, if a
        legacy ``extra`` carries it, moves into the plan's
        :class:`~repro.api.LoadSpec`; everything else in ``extra`` is
        a workload parameter validated against the registry schema.
        The condition's :meth:`content_hash` stays the store key, so
        stored campaign results keep their identity.
        """
        from repro.api.specs import (
            ExperimentPlan,
            HardwareSpec,
            LoadSpec,
            RunPolicy,
            WorkloadSpec,
        )

        extra = self.extra_kwargs()
        # Every universal builder param maps to the LoadSpec field of
        # the same name (the contract a new UNIVERSAL_BUILDER_PARAMS
        # entry must uphold); everything left is a workload param.
        load_kwargs = {spec.name: extra.pop(spec.name)
                       for spec in UNIVERSAL_BUILDER_PARAMS
                       if spec.name in extra}
        return ExperimentPlan(
            workload=WorkloadSpec.create(self.workload, **extra),
            load=LoadSpec(qps=self.qps, num_requests=self.num_requests,
                          arrival=self.arrival, **load_kwargs),
            hardware=HardwareSpec(
                client=self.client_config, server=self.server_config,
                client_label=self.client_label,
                server_label=self.condition_label),
            policy=RunPolicy(runs=self.runs, base_seed=self.base_seed,
                             label=self.label,
                             engine=self.engine or DEFAULT_ENGINE,
                             workers=self.workers or 1),
            cluster=self.cluster,
            graph=self.graph,
        )


def _coerce_server_condition(
        label: str,
        value: Union[str, Mapping[str, Any], HardwareConfig],
        ) -> HardwareConfig:
    """One server condition from config, preset name, or knob shorthand.

    Shorthand: ``{"knob": "smt"|"c1e", "enabled": bool}`` derives the
    Table II baseline exactly like the figure studies do.
    """
    if isinstance(value, HardwareConfig):
        return value
    if isinstance(value, str):
        return hardware_config_from_dict(value)
    if "knob" in value:
        knob = str(value["knob"]).lower()
        enabled = bool(value.get("enabled", False))
        if knob == "smt":
            return server_with_smt(enabled)
        if knob == "c1e":
            return server_with_c1e(enabled)
        raise ExperimentError(
            f"unknown knob {knob!r} in condition {label!r}; "
            f"expected 'smt' or 'c1e'")
    return hardware_config_from_dict(dict(value))


def _coerce_clients(
        value: Union[Sequence[str], Mapping[str, Any], None],
        ) -> Dict[str, HardwareConfig]:
    if value is None:
        return dict(DEFAULT_CLIENTS)
    if isinstance(value, Mapping):
        return {str(label): (config if isinstance(config, HardwareConfig)
                             else hardware_config_from_dict(config))
                for label, config in value.items()}
    return {str(name): hardware_config_from_dict(str(name))
            for name in value}


@dataclass
class CampaignSpec:
    """A declarative cartesian sweep of experimental conditions.

    Attributes:
        name: campaign name (labels the store rows and reports).
        workload: registered workload name.
        clients: client label -> hardware config (default: LP and HP).
        conditions: server condition label -> hardware config.
        qps_list: the load sweep, in paper order.
        runs: repetitions per condition.
        num_requests: requests per run.
        base_seed: campaign-wide base seed; per-condition blocks are
            derived via :func:`cell_seed`.
        extra: extra kwargs forwarded to the testbed builder.
        cluster: server-side topology every condition deploys on
            (spec, dict, or ``None`` for single-server).
        engine: event-loop engine every condition runs on (``None``
            for the reference loop).  Validated here, before any
            condition executes, with a did-you-mean hint.
        graph: service-graph topology every condition deploys on
            (spec, dict, or ``None``); validated here, before
            expansion, with did-you-mean hints for tier references.
        arrival: time-varying arrival shape every condition drives
            (spec, dict, shape name, or ``None`` for Poisson).
    """

    name: str
    workload: str
    conditions: Dict[str, HardwareConfig]
    qps_list: Tuple[float, ...]
    clients: Dict[str, HardwareConfig] = field(
        default_factory=lambda: dict(DEFAULT_CLIENTS))
    runs: int = DEFAULT_RUNS
    num_requests: int = 1_000
    base_seed: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)
    cluster: Optional[ClusterSpec] = None
    engine: Optional[str] = None
    graph: Optional[ServiceGraphSpec] = None
    arrival: Optional[ArrivalSpec] = None

    def __post_init__(self) -> None:
        if self.cluster is not None:
            cluster = as_cluster_spec(self.cluster)
            self.cluster = (None if cluster.is_single_server
                            else cluster)
        if self.engine is not None:
            engine = validate_engine_name(self.engine)
            self.engine = (None if engine == DEFAULT_ENGINE
                           else engine)
        self.graph = as_graph_spec(self.graph)
        self.arrival = as_arrival_spec(self.arrival)
        if self.graph is not None and self.cluster is not None:
            raise ExperimentError(
                "a campaign deploys either a service graph or a "
                "cluster, not both")
        self.qps_list = tuple(float(q) for q in self.qps_list)
        if not self.name:
            raise ExperimentError("campaign name must be non-empty")
        if self.runs < 1:
            raise ExperimentError(f"runs must be >= 1, got {self.runs}")
        if self.num_requests < 1:
            raise ExperimentError(
                f"num_requests must be >= 1, got {self.num_requests}")
        if not self.qps_list:
            raise ExperimentError("qps_list must be non-empty")
        if not self.conditions:
            raise ExperimentError("conditions must be non-empty")
        if not self.clients:
            raise ExperimentError("clients must be non-empty")
        self.extra = _normalize_extra(self.extra)
        # Validate extra against the workload's registered parameter
        # schema *now*, naming the offending key -- not at execution
        # time deep inside a worker process.  A workload the driving
        # process has not registered (a plugin the executor imports)
        # defers validation to plan-build time.
        definition = find_workload(self.workload)
        if definition is not None:
            self.extra = definition.validate_params(
                self.extra, include_universal=True)

    # ------------------------------------------------------------------
    def expand(self) -> List[ConditionSpec]:
        """The sweep, flattened in deterministic paper order.

        Order is clients x conditions x qps -- the same nesting the
        serial figure studies use, so a campaign-built grid renders
        its series in the same order.
        """
        extra = tuple(sorted(self.extra.items()))
        out: List[ConditionSpec] = []
        for client_label, client_config in self.clients.items():
            for condition_label, server_config in self.conditions.items():
                for qps in self.qps_list:
                    out.append(ConditionSpec(
                        workload=self.workload,
                        client_label=client_label,
                        client_config=client_config,
                        condition_label=condition_label,
                        server_config=server_config,
                        qps=qps,
                        runs=self.runs,
                        num_requests=self.num_requests,
                        base_seed=cell_seed(
                            self.base_seed, client_label,
                            condition_label, qps),
                        extra=extra,
                        cluster=self.cluster,
                        engine=self.engine,
                        graph=self.graph,
                        arrival=self.arrival,
                    ))
        return out

    def size(self) -> int:
        """Number of conditions in the sweep."""
        return len(self.clients) * len(self.conditions) * len(self.qps_list)

    def with_overrides(self, **kwargs: Any) -> "CampaignSpec":
        """Copy of this spec with some fields replaced (CLI overrides)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form of the whole campaign."""
        data = {
            "name": self.name,
            "workload": self.workload,
            "clients": {label: hardware_config_to_dict(config)
                        for label, config in self.clients.items()},
            "conditions": {label: hardware_config_to_dict(config)
                           for label, config in self.conditions.items()},
            "qps_list": list(self.qps_list),
            "runs": self.runs,
            "num_requests": self.num_requests,
            "base_seed": self.base_seed,
            "extra": dict(self.extra),
        }
        if self.cluster is not None:
            data["cluster"] = self.cluster.to_dict()
        if self.engine is not None:
            data["engine"] = self.engine
        if self.graph is not None:
            data["graph"] = self.graph.to_dict()
        if self.arrival is not None:
            data["arrival"] = self.arrival.to_dict()
        return data

    def to_json(self, indent: int = 2) -> str:
        """JSON text form (what a campaign file contains)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Build a campaign from a plain dict.

        Accepts the shorthands documented in the module docstring:
        clients as a list of preset names, server conditions as knob
        dicts or preset names, ``qps`` as an alias for ``qps_list``.
        """
        try:
            name = str(data["name"])
            workload = str(data["workload"])
            raw_conditions = data["conditions"]
        except KeyError as exc:
            raise ExperimentError(
                f"invalid campaign spec: missing {exc}") from exc
        qps_list = data.get("qps_list", data.get("qps"))
        if qps_list is None:
            raise ExperimentError(
                "invalid campaign spec: missing 'qps_list'")
        conditions = {
            str(label): _coerce_server_condition(str(label), value)
            for label, value in dict(raw_conditions).items()}
        return cls(
            name=name,
            workload=workload,
            clients=_coerce_clients(data.get("clients")),
            conditions=conditions,
            qps_list=tuple(float(q) for q in qps_list),
            runs=int(data.get("runs", DEFAULT_RUNS)),
            num_requests=int(data.get("num_requests", 1_000)),
            base_seed=int(data.get("base_seed", 0)),
            extra=dict(data.get("extra", {})),
            cluster=(ClusterSpec.from_dict(data["cluster"])
                     if "cluster" in data else None),
            engine=data.get("engine"),
            graph=(ServiceGraphSpec.from_dict(data["graph"])
                   if "graph" in data else None),
            arrival=(ArrivalSpec.from_dict(data["arrival"])
                     if "arrival" in data else None),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Build a campaign from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(
                f"campaign spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        """Build a campaign from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def content_hash(self) -> str:
        """Stable identity of the whole campaign."""
        return content_hash(self.to_dict())
