"""Durable result store: SQLite rows keyed by condition hash.

Every completed condition is persisted as (condition hash, condition
spec JSON, result payload JSON).  The hash is content-derived
(:meth:`ConditionSpec.content_hash`), so:

* re-running a campaign skips every condition already in the store
  (a cache hit is byte-identical to a fresh run);
* a campaign killed mid-flight resumes from exactly the conditions it
  had not finished -- partial results were committed as they landed;
* different campaigns that share conditions share results;
* the analysis layer can rebuild figures and tables from the store
  without re-simulating anything.

Only successful conditions are stored; failures stay pending so the
next invocation retries them.  One writer (the campaign parent
process) is assumed -- workers return results to the parent rather
than writing concurrently.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.campaign.serialize import (
    canonical_json,
    experiment_result_from_dict,
    experiment_result_to_dict,
)
from repro.campaign.spec import ConditionSpec
from repro.core.experiment import ExperimentResult
from repro.errors import ExperimentError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    condition_hash  TEXT PRIMARY KEY,
    campaign        TEXT NOT NULL,
    workload        TEXT NOT NULL,
    label           TEXT NOT NULL,
    qps             REAL NOT NULL,
    runs            INTEGER NOT NULL,
    spec_json       TEXT NOT NULL,
    payload_json    TEXT NOT NULL,
    created_at      REAL NOT NULL,
    elapsed_s       REAL NOT NULL DEFAULT 0.0
);
CREATE INDEX IF NOT EXISTS idx_results_campaign
    ON results (campaign);
"""


class ResultStore:
    """SQLite-backed store of per-condition experiment results.

    Args:
        path: database file path; parent directories are created.
            ``":memory:"`` gives an ephemeral in-process store (tests).
    """

    def __init__(self, path: str = "campaign-results.sqlite") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._migrate()
        self._conn.commit()

    def _migrate(self) -> None:
        """Bring a pre-existing database up to the current schema.

        ``CREATE TABLE IF NOT EXISTS`` never alters an existing
        table, so columns added after a store was created (the
        per-condition ``elapsed_s`` timing) are patched in here;
        pre-migration rows read back as 0.0 ("timing unknown").
        """
        columns = {row[1] for row in self._conn.execute(
            "PRAGMA table_info(results)")}
        if "elapsed_s" not in columns:
            self._conn.execute(
                "ALTER TABLE results ADD COLUMN elapsed_s REAL "
                "NOT NULL DEFAULT 0.0")

    # ------------------------------------------------------------------
    def put(self, spec: ConditionSpec, result: ExperimentResult,
            campaign: str = "",
            result_dict: Optional[Dict[str, Any]] = None,
            elapsed_s: float = 0.0) -> None:
        """Persist one condition's result (idempotent, last write wins).

        Args:
            spec: the condition the result belongs to.
            result: the experiment result.
            campaign: owning campaign name, for listings.
            result_dict: the result's dict form, when the caller
                already has it (pool workers ship results across the
                pickle boundary as dicts) -- skips re-serializing.
            elapsed_s: wall time the condition took to simulate; 0.0
                means "unknown" (e.g. rows written by older code).
        """
        if result_dict is None:
            result_dict = experiment_result_to_dict(result)
        self._conn.execute(
            "INSERT OR REPLACE INTO results (condition_hash, campaign, "
            "workload, label, qps, runs, spec_json, payload_json, "
            "created_at, elapsed_s) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (spec.content_hash(), str(campaign), spec.workload,
             spec.label, spec.qps, spec.runs,
             canonical_json(spec.to_dict()),
             canonical_json(result_dict),
             time.time(), float(elapsed_s)))
        self._conn.commit()

    def get(self, condition_hash: str) -> Optional[ExperimentResult]:
        """The stored result for *condition_hash*, or None."""
        row = self._conn.execute(
            "SELECT payload_json FROM results WHERE condition_hash = ?",
            (condition_hash,)).fetchone()
        if row is None:
            return None
        return experiment_result_from_dict(json.loads(row[0]))

    def get_spec(self, condition_hash: str) -> Optional[ConditionSpec]:
        """The stored condition spec for *condition_hash*, or None."""
        row = self._conn.execute(
            "SELECT spec_json FROM results WHERE condition_hash = ?",
            (condition_hash,)).fetchone()
        if row is None:
            return None
        return ConditionSpec.from_dict(json.loads(row[0]))

    def __contains__(self, condition_hash: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE condition_hash = ?",
            (condition_hash,)).fetchone()
        return row is not None

    def hashes(self) -> frozenset:
        """All stored condition hashes."""
        rows = self._conn.execute(
            "SELECT condition_hash FROM results").fetchall()
        return frozenset(row[0] for row in rows)

    def count(self) -> int:
        """Number of stored conditions."""
        return int(self._conn.execute(
            "SELECT COUNT(*) FROM results").fetchone()[0])

    def rows(self) -> Iterator[Tuple[str, str, str, float, int, float]]:
        """(hash, campaign, label, qps, runs, created_at) per row."""
        cursor = self._conn.execute(
            "SELECT condition_hash, campaign, label, qps, runs, "
            "created_at FROM results ORDER BY created_at")
        yield from cursor

    def timings_for(self, conditions: List[ConditionSpec]
                    ) -> Dict[str, Tuple[str, float, int, float]]:
        """hash -> (label, qps, runs, elapsed_s) for stored conditions.

        Conditions absent from the store are omitted; an elapsed_s of
        0.0 marks a row stored before timings were recorded.
        """
        out: Dict[str, Tuple[str, float, int, float]] = {}
        for condition in conditions:
            row = self._conn.execute(
                "SELECT label, qps, runs, elapsed_s FROM results "
                "WHERE condition_hash = ?",
                (condition.content_hash(),)).fetchone()
            if row is not None:
                out[condition.content_hash()] = (
                    str(row[0]), float(row[1]), int(row[2]),
                    float(row[3]))
        return out

    # ------------------------------------------------------------------
    def missing(self, conditions: List[ConditionSpec]
                ) -> List[ConditionSpec]:
        """The subset of *conditions* not yet in the store."""
        stored = self.hashes()
        return [c for c in conditions if c.content_hash() not in stored]

    def results_for(self, conditions: List[ConditionSpec]
                    ) -> Dict[str, ExperimentResult]:
        """hash -> result for every stored member of *conditions*."""
        out: Dict[str, ExperimentResult] = {}
        for condition in conditions:
            result = self.get(condition.content_hash())
            if result is not None:
                out[condition.content_hash()] = result
        return out

    def delete(self, condition_hash: str) -> bool:
        """Drop one condition; True if a row was deleted."""
        cursor = self._conn.execute(
            "DELETE FROM results WHERE condition_hash = ?",
            (condition_hash,))
        self._conn.commit()
        return cursor.rowcount > 0

    def clear(self) -> int:
        """Drop every row; returns the number deleted."""
        cursor = self._conn.execute("DELETE FROM results")
        self._conn.commit()
        return cursor.rowcount

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_store(path: Optional[str]) -> Optional[ResultStore]:
    """Open a store, or pass None through (store-less execution)."""
    if path is None:
        return None
    return ResultStore(path)


def require_store(path: str) -> ResultStore:
    """Open an existing store; raise if the file does not exist yet."""
    if path != ":memory:" and not os.path.exists(path):
        raise ExperimentError(
            f"no result store at {path!r}; run the campaign first")
    return ResultStore(path)
