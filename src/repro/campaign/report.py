"""Campaign status and reporting from the result store.

Bridges campaigns back into the analysis layer: a completed (or
partially-completed) campaign's stored results are reassembled into
the :class:`~repro.analysis.figures.StudyGrid` shape every figure
renderer already consumes -- so plots and tables come from the store,
not from re-simulation.

The figure imports are deliberately local to each function: the
analysis layer sits *above* the campaign layer (``figures`` builds its
grids through the campaign executor), so importing it at module scope
would be circular.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.campaign.executor import CampaignOutcome
from repro.campaign.spec import CampaignSpec, ConditionSpec
from repro.campaign.store import ResultStore
from repro.core.experiment import ExperimentResult
from repro.errors import ExperimentError


def _assemble_grid(spec: CampaignSpec,
                   results: Dict[str, ExperimentResult],
                   conditions: List[ConditionSpec]):
    from repro.analysis.figures import StudyGrid

    missing = [c for c in conditions
               if c.content_hash() not in results]
    if missing:
        listing = ", ".join(
            f"{c.label}@{c.qps:g}" for c in missing[:8])
        suffix = ", ..." if len(missing) > 8 else ""
        raise ExperimentError(
            f"campaign {spec.name!r} is incomplete: "
            f"{len(missing)}/{len(conditions)} conditions missing "
            f"({listing}{suffix})")
    grid = StudyGrid(workload=spec.workload,
                     conditions=dict(spec.conditions),
                     qps_list=spec.qps_list)
    for condition in conditions:
        cell = grid.cells.setdefault(
            (condition.client_label, condition.condition_label), {})
        cell[condition.qps] = results[condition.content_hash()]
    return grid


def grid_from_outcome(spec: CampaignSpec, outcome: CampaignOutcome):
    """A :class:`StudyGrid` from one executor invocation's outcome.

    Raises:
        ExperimentError: if any condition failed.
    """
    outcome.raise_on_failure()
    return _assemble_grid(spec, outcome.results(), spec.expand())


def grid_from_store(spec: CampaignSpec, store: ResultStore):
    """A :class:`StudyGrid` for *spec*, entirely from stored results.

    Raises:
        ExperimentError: if the store is missing any condition.
    """
    conditions = spec.expand()
    return _assemble_grid(spec, store.results_for(conditions),
                          conditions)


# ------------------------------------------------------------------ status
def campaign_progress(spec: CampaignSpec,
                      store: Optional[ResultStore]
                      ) -> Tuple[List[ConditionSpec],
                                 List[ConditionSpec]]:
    """(stored, missing) condition lists for *spec* against *store*."""
    conditions = spec.expand()
    if store is None:
        return [], conditions
    stored_hashes = store.hashes()
    stored = [c for c in conditions
              if c.content_hash() in stored_hashes]
    missing = [c for c in conditions
               if c.content_hash() not in stored_hashes]
    return stored, missing


def render_campaign_status(spec: CampaignSpec,
                           store: Optional[ResultStore]) -> str:
    """Human-readable completion status of *spec* against *store*."""
    stored, missing = campaign_progress(spec, store)
    total = len(stored) + len(missing)
    lines = [
        f"campaign {spec.name!r} ({spec.workload}, "
        f"{spec.runs} runs x {spec.num_requests} requests)",
        f"  conditions: {total} "
        f"({len(spec.clients)} clients x {len(spec.conditions)} "
        f"server conditions x {len(spec.qps_list)} QPS points)",
        f"  complete:   {len(stored)}/{total}",
    ]
    if missing:
        lines.append("  missing:")
        for condition in missing:
            lines.append(f"    {condition.label} @ {condition.qps:g}")
    else:
        lines.append("  all conditions stored; "
                     "reports render without re-simulation")
    timing = render_timing_table(stored, store)
    if timing:
        lines.append("")
        lines.append(timing)
    return "\n".join(lines)


def render_timing_table(stored: List[ConditionSpec],
                        store: Optional[ResultStore]) -> str:
    """Compact per-condition wall-time table for stored conditions.

    Returns an empty string when nothing has a recorded timing (no
    store, no stored conditions, or only pre-timing rows whose
    ``elapsed_s`` reads back as 0.0).
    """
    if store is None or not stored:
        return ""
    timings = store.timings_for(stored)
    rows = [(label, qps, runs, elapsed, wait, pid)
            for (label, qps, runs, elapsed, wait, pid)
            in timings.values()
            if elapsed > 0.0]
    if not rows:
        return ""
    rows.sort(key=lambda row: row[3], reverse=True)
    label_width = max(len("condition"),
                      max(len(row[0]) for row in rows))
    total = sum(row[3] for row in rows)
    total_wait = sum(row[4] for row in rows)
    lines = [
        "  timings (stored conditions, slowest first):",
        f"    {'condition':<{label_width}}  {'qps':>9}  "
        f"{'runs':>4}  {'wall':>8}  {'wait':>8}  {'pid':>7}",
    ]
    for label, qps, runs, elapsed, wait, pid in rows:
        pid_text = "-" if pid is None else str(pid)
        lines.append(
            f"    {label:<{label_width}}  {qps:>9g}  "
            f"{runs:>4d}  {elapsed:>7.2f}s  {wait:>7.2f}s  "
            f"{pid_text:>7}")
    lines.append(
        f"    {'total':<{label_width}}  {'':>9}  {'':>4}  "
        f"{total:>7.2f}s  {total_wait:>7.2f}s  {'':>7}")
    return "\n".join(lines)


def render_campaign_report(spec: CampaignSpec, store: ResultStore,
                           metric: str = "avg") -> str:
    """The paper-style series tables for a completed campaign."""
    from repro.analysis.figures import (
        render_latency_series,
        render_ratio_series,
    )

    grid = grid_from_store(spec, store)
    sections = [render_latency_series(grid, metric)]
    labels = list(spec.conditions)
    # A ratio of run-to-run stdevs is not a paper figure and
    # ratio_series does not support it; render the series table only.
    if len(labels) == 2 and metric != "stdev_avg":
        sections.append(render_ratio_series(
            grid, labels[0], labels[1], metric))
    return "\n\n".join(sections)
