"""Campaign execution: store-aware, parallel, failure-isolated.

The executor walks a campaign's expanded condition list and, for each
condition, either (a) serves it from the result store (cache hit),
(b) runs it inline (``max_workers <= 1``, the figure studies' path),
or (c) ships it to a :class:`concurrent.futures.ProcessPoolExecutor`
worker.  Each :class:`~repro.core.experiment.Experiment` is
seed-deterministic and shares no state with any other condition, so
the sweep is embarrassingly parallel and parallel results are
bit-identical to serial ones.

Failures are captured per condition -- a worker returns an error
payload instead of raising -- so one bad condition never kills the
campaign; it is reported, left out of the store, and retried on the
next invocation.

Two scale-out mechanics keep large campaigns efficient:

* **Warm workers** -- the pool initializer installs the campaign's
  *plan skeleton* (the first plannable condition's full plan dict)
  once per worker process and pre-compiles it, so the heavy imports
  (workload registry, assembly modules) and registry validation are
  paid once per worker, not once per condition.  Conditions then ship
  as section-level *patches* against the skeleton -- exact by
  construction, since a patch stores every section that differs and
  drops every section the condition lacks.
* **Batched persistence** -- the parent buffers finished results and
  writes them to the store in one transaction per
  :data:`PERSIST_BATCH` drain (see :meth:`ResultStore.put_many`),
  instead of one commit per condition.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.api.specs import ExperimentPlan
from repro.campaign.serialize import (
    experiment_result_from_dict,
    experiment_result_to_dict,
)
from repro.campaign.spec import CampaignSpec, ConditionSpec
from repro.campaign.store import ResultStore
from repro.core.experiment import ExperimentResult
from repro.errors import ExperimentError

#: Condition status values, in lifecycle order.
STATUS_HIT = "hit"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

#: Progress callback: (outcome, completed_count, total_count).
ProgressCallback = Callable[["ConditionOutcome", int, int], None]

#: Finished results buffered in the parent per store transaction.
PERSIST_BATCH = 16

#: The campaign-invariant plan skeleton installed in each warm worker
#: by :func:`_warm_init` (a module global: pool initializers run once
#: per worker process, before any task).
_WARM_SKELETON: Optional[Dict[str, Any]] = None

#: Sentinel distinguishing "section absent" from any real section.
_MISSING = object()


def _warm_init(skeleton_json: str) -> None:
    """Pool initializer: install and pre-compile the plan skeleton.

    Compiling the skeleton once pulls in the workload registry and
    the assembly modules and runs spec validation, so per-condition
    work in this process starts warm.  Warming is best-effort: a
    skeleton that fails to compile leaves each patched payload to
    fail (and be recorded) individually.
    """
    global _WARM_SKELETON
    _WARM_SKELETON = json.loads(skeleton_json)
    try:
        ExperimentPlan.from_dict(_WARM_SKELETON)
    except Exception:  # noqa: BLE001 -- warming must never kill a worker
        pass


def _plan_patch(skeleton: Dict[str, Any],
                plan_dict: Dict[str, Any]) -> Dict[str, Any]:
    """The section-level patch turning *skeleton* into *plan_dict*.

    ``set`` holds every section whose value differs from the
    skeleton's; ``drop`` lists skeleton sections the plan lacks.
    :func:`_apply_patch` inverts this exactly, so patched payloads
    reconstruct the original plan dict byte-for-byte.
    """
    return {
        "set": {key: value for key, value in plan_dict.items()
                if skeleton.get(key, _MISSING) != value},
        "drop": [key for key in skeleton if key not in plan_dict],
    }


def _apply_patch(skeleton: Dict[str, Any],
                 patch: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild a plan dict from the warm skeleton and its patch."""
    dropped = set(patch.get("drop", ()))
    data = {key: value for key, value in skeleton.items()
            if key not in dropped}
    data.update(patch.get("set", {}))
    return data


def run_condition(spec: ConditionSpec) -> ExperimentResult:
    """Run one condition's experiment to completion (any process).

    Conditions compile into :class:`~repro.api.ExperimentPlan`s; the
    plan layer resolves the workload registry and validates the
    parameters before anything simulates.
    """
    return spec.to_plan().run()


def _execute_chunk(payloads: Sequence[Dict[str, Any]]
                   ) -> List[Dict[str, Any]]:
    """Worker entry point: run a chunk of plans, never raise.

    Each payload is ``{"hash": <condition hash>, ...}`` carrying
    either a full ``"plan"`` dict or a ``"patch"`` against the warm
    worker's installed skeleton (see :func:`_warm_init`); either way
    the pickle boundary carries only JSON-shaped data.  An optional
    ``"submitted_at"`` parent ``time.monotonic()`` stamp lets the
    worker report how long the payload sat queued (CLOCK_MONOTONIC is
    system-wide on Linux, so the cross-process difference is
    meaningful).  Every exception is captured as an error payload so
    a single bad condition cannot poison its chunk or the pool.
    """
    out: List[Dict[str, Any]] = []
    for payload in payloads:
        started = time.perf_counter()
        submitted = payload.get("submitted_at")
        queue_wait = (max(0.0, time.monotonic() - float(submitted))
                      if submitted is not None else 0.0)
        try:
            if "plan" in payload:
                plan_dict = payload["plan"]
            elif _WARM_SKELETON is not None:
                plan_dict = _apply_patch(_WARM_SKELETON,
                                         payload["patch"])
            else:
                raise ExperimentError(
                    "patched payload reached a worker with no "
                    "installed plan skeleton")
            plan = ExperimentPlan.from_dict(plan_dict)
            result = plan.run()
            out.append({
                "hash": payload["hash"],
                "ok": True,
                "result": experiment_result_to_dict(result),
                "elapsed_s": time.perf_counter() - started,
                "queue_wait_s": queue_wait,
                "pid": os.getpid(),
            })
        except Exception as exc:  # noqa: BLE001 -- isolation boundary
            out.append({
                "hash": payload["hash"],
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "elapsed_s": time.perf_counter() - started,
                "queue_wait_s": queue_wait,
                "pid": os.getpid(),
            })
    return out


@dataclass
class ConditionOutcome:
    """What happened to one condition of a campaign.

    Attributes:
        spec: the condition.
        status: ``"hit"`` (served from the store), ``"done"`` (ran),
            or ``"failed"``.
        result: the experiment result (None when failed).
        error: the captured error string (None unless failed).
        elapsed_s: wall-clock seconds spent executing (0 for hits).
        queue_wait_s: seconds spent queued between submission and a
            worker picking the condition up (0 for hits and inline
            execution).
        worker_pid: pid of the process that executed the condition
            (None for hits and for rows predating attribution).
    """

    spec: ConditionSpec
    status: str
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    queue_wait_s: float = 0.0
    worker_pid: Optional[int] = None


@dataclass
class CampaignOutcome:
    """Everything a finished (or partially-failed) campaign produced.

    Attributes:
        spec: the campaign that ran.
        outcomes: one :class:`ConditionOutcome` per condition, in
            expansion (paper) order.
        elapsed_s: total wall-clock seconds for the campaign.
    """

    spec: CampaignSpec
    outcomes: List[ConditionOutcome] = field(default_factory=list)
    elapsed_s: float = 0.0

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True when every condition has a result."""
        return all(o.result is not None for o in self.outcomes)

    @property
    def hits(self) -> List[ConditionOutcome]:
        """Conditions served from the store."""
        return [o for o in self.outcomes if o.status == STATUS_HIT]

    @property
    def executed(self) -> List[ConditionOutcome]:
        """Conditions actually simulated this invocation."""
        return [o for o in self.outcomes if o.status == STATUS_DONE]

    @property
    def failures(self) -> List[ConditionOutcome]:
        """Conditions that errored this invocation."""
        return [o for o in self.outcomes if o.status == STATUS_FAILED]

    def results(self) -> Dict[str, ExperimentResult]:
        """condition hash -> result, for every completed condition."""
        return {o.spec.content_hash(): o.result
                for o in self.outcomes if o.result is not None}

    def raise_on_failure(self) -> None:
        """Raise :class:`ExperimentError` if any condition failed."""
        if not self.ok:
            lines = [f"  {o.spec.label} @ {o.spec.qps:g}: {o.error}"
                     for o in self.failures]
            raise ExperimentError(
                f"{len(self.failures)}/{len(self.outcomes)} campaign "
                "conditions failed:\n" + "\n".join(lines))

    def summary(self) -> str:
        """One-line human summary of the invocation."""
        return (f"campaign {self.spec.name!r}: "
                f"{len(self.outcomes)} conditions, "
                f"{len(self.hits)} cached, "
                f"{len(self.executed)} executed, "
                f"{len(self.failures)} failed "
                f"in {self.elapsed_s:.2f}s")


class _PersistBuffer:
    """Buffers finished results; one store transaction per drain.

    Stays a no-op for store-less execution.  The campaign parent
    flushes every :data:`PERSIST_BATCH` results, before any fail-fast
    raise, and at invocation end -- so a killed campaign loses at
    most one partial batch, which the next invocation simply re-runs.
    """

    def __init__(self, store: Optional[ResultStore], campaign: str,
                 batch: int = PERSIST_BATCH) -> None:
        self._store = store
        self._campaign = str(campaign)
        self._batch = int(batch)
        self._entries: List[Dict[str, Any]] = []

    def add(self, condition: ConditionSpec, result: ExperimentResult,
            result_dict: Optional[Dict[str, Any]] = None,
            elapsed_s: float = 0.0, queue_wait_s: float = 0.0,
            worker_pid: Optional[int] = None) -> None:
        if self._store is None:
            return
        self._entries.append({
            "spec": condition, "result": result,
            "result_dict": result_dict, "elapsed_s": elapsed_s,
            "queue_wait_s": queue_wait_s, "worker_pid": worker_pid})
        if len(self._entries) >= self._batch:
            self.flush()

    def flush(self) -> None:
        if self._store is None or not self._entries:
            return
        entries, self._entries = self._entries, []
        self._store.put_many(entries, campaign=self._campaign)


class CampaignExecutor:
    """Runs campaigns against an optional store, serially or in parallel.

    Args:
        store: result store for memoization/resume; None disables
            persistence (every condition executes).
        max_workers: process count. ``None`` means ``os.cpu_count()``;
            values <= 1 run inline in this process (no pool, no pickle
            round-trip) -- the exact serial path the figure studies
            used before campaigns existed.
        chunksize: conditions shipped to a worker per task.  Raise it
            for campaigns of many tiny conditions to amortize process
            round-trips.
        fail_fast: abort on the first failed condition instead of
            capturing it and continuing.  Inline execution re-raises
            the original exception (the pre-campaign study behavior);
            pool execution cancels pending work and raises an
            :class:`ExperimentError` carrying the worker's error.
        persist_batch: finished results buffered per store
            transaction.  The default amortizes commits for wide
            campaigns; latency-sensitive callers (the autotuner, whose
            resume guarantee depends on every finished evaluation
            surviving a kill) pass 1 to commit per condition.
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 max_workers: Optional[int] = None,
                 chunksize: int = 1, fail_fast: bool = False,
                 persist_batch: int = PERSIST_BATCH) -> None:
        if chunksize < 1:
            raise ExperimentError(
                f"chunksize must be >= 1, got {chunksize}")
        if persist_batch < 1:
            raise ExperimentError(
                f"persist_batch must be >= 1, got {persist_batch}")
        self.store = store
        self.max_workers = (os.cpu_count() or 1) if max_workers is None \
            else int(max_workers)
        self.chunksize = int(chunksize)
        self.fail_fast = bool(fail_fast)
        self.persist_batch = int(persist_batch)

    # ------------------------------------------------------------------
    def run(self, spec: CampaignSpec,
            progress: Optional[ProgressCallback] = None
            ) -> CampaignOutcome:
        """Execute *spec*: serve hits, run the rest, persist as we go."""
        started = time.perf_counter()
        outcomes = self.run_conditions(
            spec.expand(), campaign=spec.name, progress=progress)
        return CampaignOutcome(
            spec=spec, outcomes=outcomes,
            elapsed_s=time.perf_counter() - started)

    def run_conditions(self, conditions: Sequence[ConditionSpec],
                       campaign: str = "",
                       progress: Optional[ProgressCallback] = None
                       ) -> List[ConditionOutcome]:
        """Execute an explicit condition list (the autotuner's path).

        Same store/hit/persist semantics as :meth:`run`, but the
        caller owns the condition list instead of a
        :class:`CampaignSpec` expanding one; outcomes come back in
        input order.
        """
        total = len(conditions)
        by_hash: Dict[str, ConditionOutcome] = {}
        completed = 0

        def record(outcome: ConditionOutcome) -> None:
            nonlocal completed
            by_hash[outcome.spec.content_hash()] = outcome
            completed += 1
            if progress is not None:
                progress(outcome, completed, total)

        pending: List[ConditionSpec] = []
        for condition in conditions:
            cached = (self.store.get(condition.content_hash())
                      if self.store is not None else None)
            if cached is not None:
                record(ConditionOutcome(
                    spec=condition, status=STATUS_HIT, result=cached))
            else:
                pending.append(condition)

        if pending:
            persist = _PersistBuffer(self.store, campaign,
                                     batch=self.persist_batch)
            try:
                if self.max_workers <= 1:
                    self._run_inline(pending, record, persist)
                else:
                    self._run_pool(pending, record, persist)
            finally:
                # Results that landed before a fail-fast raise (or
                # any other interruption) are still persisted; the
                # next invocation serves them as hits.
                persist.flush()

        return [by_hash[c.content_hash()] for c in conditions]

    # ------------------------------------------------------------------
    def _run_inline(self, pending: List[ConditionSpec],
                    record: Callable[[ConditionOutcome], None],
                    persist: _PersistBuffer) -> None:
        pid = os.getpid()
        for condition in pending:
            started = time.perf_counter()
            try:
                result = run_condition(condition)
            except Exception as exc:  # noqa: BLE001 -- isolation boundary
                if self.fail_fast:
                    raise
                record(ConditionOutcome(
                    spec=condition, status=STATUS_FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                    elapsed_s=time.perf_counter() - started,
                    worker_pid=pid))
                continue
            elapsed = time.perf_counter() - started
            persist.add(condition, result, elapsed_s=elapsed,
                        worker_pid=pid)
            record(ConditionOutcome(
                spec=condition, status=STATUS_DONE, result=result,
                elapsed_s=elapsed, worker_pid=pid))

    def _run_pool(self, pending: List[ConditionSpec],
                  record: Callable[[ConditionOutcome], None],
                  persist: _PersistBuffer) -> None:
        # Compile conditions to plan dicts before shipping, computing
        # each condition hash exactly once; a condition that fails to
        # plan (unknown workload, bad parameter) is a recorded
        # failure, not a dead campaign.
        by_hash: Dict[str, ConditionSpec] = {}
        plannable: List[ConditionSpec] = []
        plan_dicts: List[Dict[str, Any]] = []
        for condition in pending:
            condition_hash = condition.content_hash()
            try:
                plan_dict = condition.to_plan().to_dict()
            except Exception as exc:  # noqa: BLE001 -- isolation boundary
                if self.fail_fast:
                    raise
                record(ConditionOutcome(
                    spec=condition, status=STATUS_FAILED,
                    error=f"{type(exc).__name__}: {exc}"))
                continue
            by_hash[condition_hash] = condition
            plannable.append(condition)
            plan_dicts.append(plan_dict)
        if not plannable:
            return
        # The first plannable condition's plan is the campaign's
        # skeleton: warm workers install it once at pool start, and
        # every condition ships as a section-level patch against it
        # (typically just the load/hardware sections that vary).
        skeleton = plan_dicts[0]
        payloads = [
            {"hash": condition.content_hash(),
             "patch": _plan_patch(skeleton, plan_dict)}
            for condition, plan_dict in zip(plannable, plan_dicts)]
        chunks = [(plannable[i:i + self.chunksize],
                   payloads[i:i + self.chunksize])
                  for i in range(0, len(plannable), self.chunksize)]
        workers = min(self.max_workers, len(chunks))
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_warm_init,
                initargs=(json.dumps(skeleton),)) as pool:
            futures = {}
            for chunk, chunk_payloads in chunks:
                # The submit stamp is what queue-wait is measured
                # against in the worker (both ends CLOCK_MONOTONIC).
                submitted = time.monotonic()
                for payload in chunk_payloads:
                    payload["submitted_at"] = submitted
                futures[pool.submit(_execute_chunk,
                                    chunk_payloads)] = chunk
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    chunk_results = future.result()
                except Exception as exc:  # noqa: BLE001 -- pool failure
                    # The whole chunk is lost (e.g. a worker died);
                    # fail its conditions rather than the campaign.
                    for condition in chunk:
                        record(ConditionOutcome(
                            spec=condition, status=STATUS_FAILED,
                            error=f"{type(exc).__name__}: {exc}"))
                    continue
                for payload in chunk_results:
                    condition = by_hash[payload["hash"]]
                    elapsed = float(payload.get("elapsed_s", 0.0))
                    queue_wait = float(
                        payload.get("queue_wait_s", 0.0))
                    pid = payload.get("pid")
                    if self.fail_fast and not payload["ok"]:
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise ExperimentError(
                            f"condition {condition.label} @ "
                            f"{condition.qps:g} failed: "
                            f"{payload['error']}")
                    if payload["ok"]:
                        result = experiment_result_from_dict(
                            payload["result"])
                        persist.add(condition, result,
                                    result_dict=payload["result"],
                                    elapsed_s=elapsed,
                                    queue_wait_s=queue_wait,
                                    worker_pid=pid)
                        record(ConditionOutcome(
                            spec=condition, status=STATUS_DONE,
                            result=result, elapsed_s=elapsed,
                            queue_wait_s=queue_wait,
                            worker_pid=pid))
                    else:
                        record(ConditionOutcome(
                            spec=condition, status=STATUS_FAILED,
                            error=payload["error"],
                            elapsed_s=elapsed,
                            queue_wait_s=queue_wait,
                            worker_pid=pid))


def execute_campaign(spec: CampaignSpec,
                     store: Optional[ResultStore] = None,
                     max_workers: Optional[int] = 1,
                     chunksize: int = 1,
                     fail_fast: bool = False,
                     progress: Optional[ProgressCallback] = None
                     ) -> CampaignOutcome:
    """Convenience wrapper: build an executor and run *spec* once.

    Defaults to inline serial execution (``max_workers=1``), the
    right choice for library callers like the figure studies; pass
    ``max_workers=None`` to use every core.
    """
    executor = CampaignExecutor(
        store=store, max_workers=max_workers, chunksize=chunksize,
        fail_fast=fail_fast)
    return executor.run(spec, progress=progress)
