"""Campaign orchestration: declarative, parallel, resumable sweeps.

The paper's methodology is many repetitions across a grid of
conditions -- workloads x client/server knobs x QPS points x 50 seeds.
This package turns those ad-hoc loops into *campaigns*:

* :mod:`repro.campaign.spec` -- :class:`CampaignSpec` describes a
  cartesian sweep as data (dict/JSON-loadable) and expands it into
  content-hashed :class:`ConditionSpec` experiments.
* :mod:`repro.campaign.store` -- :class:`ResultStore` persists each
  condition's result in SQLite keyed by its hash, enabling cache
  hits, mid-run resume and store-backed analysis.
* :mod:`repro.campaign.executor` -- :class:`CampaignExecutor` fans
  conditions out over a process pool (each experiment is
  seed-deterministic and embarrassingly parallel) with per-condition
  failure isolation.
* :mod:`repro.campaign.presets` -- the paper's figure studies as
  named campaigns.
* :mod:`repro.campaign.report` -- status and store-backed rendering
  back into the :class:`~repro.analysis.figures.StudyGrid` shape.

Quickstart::

    from repro.campaign import (
        CampaignExecutor, CampaignSpec, ResultStore, campaign_by_name)

    spec = campaign_by_name("memcached-smt").with_overrides(
        runs=10, num_requests=500)
    with ResultStore("results.sqlite") as store:
        outcome = CampaignExecutor(store, max_workers=8).run(spec)
    print(outcome.summary())
"""

from repro.campaign.executor import (
    CampaignExecutor,
    CampaignOutcome,
    ConditionOutcome,
    execute_campaign,
    run_condition,
)
from repro.campaign.presets import campaign_by_name, preset_names
from repro.campaign.report import (
    grid_from_outcome,
    grid_from_store,
    render_campaign_report,
    render_campaign_status,
)
from repro.campaign.spec import CampaignSpec, ConditionSpec, cell_seed
from repro.campaign.store import ResultStore, open_store, require_store

__all__ = [
    "CampaignExecutor",
    "CampaignOutcome",
    "CampaignSpec",
    "ConditionOutcome",
    "ConditionSpec",
    "ResultStore",
    "campaign_by_name",
    "cell_seed",
    "execute_campaign",
    "grid_from_outcome",
    "grid_from_store",
    "open_store",
    "preset_names",
    "render_campaign_report",
    "render_campaign_status",
    "require_store",
    "run_condition",
]
