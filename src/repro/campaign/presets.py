"""Named campaign presets mirroring the paper's figure studies.

Each preset is the declarative form of one study grid, at the paper's
default scale (50 runs, full QPS sweep).  The CLI exposes them so a
full figure campaign is one command::

    repro campaign run --preset memcached-smt --store results.sqlite

Scale overrides (``runs``, ``num_requests``, ``qps_list``,
``base_seed``) apply on top via :meth:`CampaignSpec.with_overrides`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.campaign.spec import CampaignSpec
from repro.cluster.spec import LB_POWER_OF_TWO, ClusterSpec
from repro.config.presets import SERVER_BASELINE, knob_conditions
from repro.errors import ExperimentError
from repro.graph.presets import graph_preset
from repro.loadgen.interarrival import ArrivalSpec
from repro.workloads.registry import DEFAULT_QPS_SWEEPS

_SMT = knob_conditions("smt")
_C1E = knob_conditions("c1e")


def _study(name: str, workload: str, conditions, num_requests: int,
           **extra: Any) -> Callable[[], CampaignSpec]:
    def build() -> CampaignSpec:
        return CampaignSpec(
            name=name,
            workload=workload,
            conditions=dict(conditions),
            qps_list=DEFAULT_QPS_SWEEPS[workload],
            num_requests=num_requests,
            extra=dict(extra),
        )
    return build


_PRESETS: Dict[str, Callable[[], CampaignSpec]] = {
    # Fig. 2 / Fig. 3: the Memcached knob studies.
    "memcached-smt": _study(
        "memcached-smt", "memcached", _SMT, num_requests=2_000),
    "memcached-c1e": _study(
        "memcached-c1e", "memcached", _C1E, num_requests=2_000),
    # Fig. 4: HDSearch.
    "hdsearch-smt": _study(
        "hdsearch-smt", "hdsearch", _SMT, num_requests=1_000),
    "hdsearch-c1e": _study(
        "hdsearch-c1e", "hdsearch", _C1E, num_requests=1_000),
    # Fig. 6: Social Network, baseline server only.
    "socialnetwork": _study(
        "socialnetwork", "socialnetwork",
        {"baseline": SERVER_BASELINE}, num_requests=800),
    # Fig. 7 (one delay point): the synthetic sensitivity workload.
    "synthetic": _study(
        "synthetic", "synthetic", {"baseline": SERVER_BASELINE},
        num_requests=2_000, added_delay_us=200.0),
    # Cluster-scale testbeds: the paper's workloads deployed the way
    # production runs them.  The memcached sweep is scaled by the
    # node count so per-node load matches the paper's single-box
    # operating points.
    "memcached-cluster": lambda: CampaignSpec(
        name="memcached-cluster",
        workload="memcached",
        conditions={"baseline": SERVER_BASELINE},
        qps_list=tuple(4 * q for q in DEFAULT_QPS_SWEEPS["memcached"]),
        num_requests=2_000,
        cluster=ClusterSpec(nodes=4, lb_policy=LB_POWER_OF_TWO),
    ),
    "hdsearch-cluster": lambda: CampaignSpec(
        name="hdsearch-cluster",
        workload="hdsearch",
        conditions={"baseline": SERVER_BASELINE},
        qps_list=DEFAULT_QPS_SWEEPS["hdsearch"],
        num_requests=1_000,
        # No lb_policy: one node, no replicas -> no balancer runs
        # (ClusterSpec canonicalizes a dead policy away anyway).
        cluster=ClusterSpec(shards=8, fanout=4),
    ),
    # Service-graph testbeds: multi-tier DAG deployments with cache
    # tiers, tail-resilience policies and time-varying load -- the
    # QoS-capacity territory past the paper's single-box scope.
    "memcached-cached": lambda: CampaignSpec(
        name="memcached-cached",
        workload="memcached",
        conditions={"baseline": SERVER_BASELINE},
        qps_list=DEFAULT_QPS_SWEEPS["memcached"],
        num_requests=2_000,
        graph=graph_preset("memcached-cached"),
        # One diurnal cycle per ~50ms of simulated time at the sweep's
        # midpoint load, so every run sees both rate extremes.
        arrival=ArrivalSpec(shape="diurnal", period_us=20_000.0,
                            amplitude=0.5),
    ),
    "hdsearch-graph": lambda: CampaignSpec(
        name="hdsearch-graph",
        workload="hdsearch",
        conditions={"baseline": SERVER_BASELINE},
        qps_list=DEFAULT_QPS_SWEEPS["hdsearch"],
        num_requests=1_000,
        graph=graph_preset("hdsearch-graph"),
    ),
}


def preset_names() -> tuple:
    """Sorted names of all campaign presets."""
    return tuple(sorted(_PRESETS))


def campaign_by_name(name: str) -> CampaignSpec:
    """Build the preset campaign called *name*.

    Raises:
        ExperimentError: on an unknown preset name.
    """
    try:
        build = _PRESETS[str(name)]
    except KeyError:
        raise ExperimentError(
            f"unknown campaign preset {name!r}; available: "
            f"{', '.join(preset_names())}"
        ) from None
    return build()
