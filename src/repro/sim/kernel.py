"""Accelerated event kernel: batch-dequeue + fused event handlers.

:class:`KernelSimulator` is an opt-in drop-in for
:class:`~repro.sim.engine.Simulator` (``RunPolicy(engine="vectorized")``)
that attacks the residual cost of the event loop: pure-Python dispatch.
The reference loop pays a chain of 4-6 Python calls per event
(callback -> component method -> hardware model -> ``post_at``); the
kernel recognises the handful of callbacks that dominate the stationary
phase of every workload -- arrival admission (``_launch``), client core
event handling (``_do_send`` / ``_at_client_nic``),
link transit (``_sent``), station service completion
(``ServerPool._finish``) and measurement (``_measured``) -- and runs a
*fused*, fully inlined handler for each, with the exact float
arithmetic and draw sequence of the reference components.

Three mechanisms stack:

* **Pre-resolved continuations.**  Events the kernel itself schedules
  carry a :class:`_K` continuation in the heap entry's callback slot:
  the fused handler's opcode and context, resolved once at dispatch
  build.  Dispatching one is a single ``type`` test and two slot
  loads -- no dict probe over bound-method hash/eq.  A ``_K`` keeps
  the exact reference callback alongside (and is itself callable as
  that callback), so entries left in the heap when ``run()`` exits
  convert back to plain reference format losslessly.

* **Batching.**  The main loop tracks runs of same-continuation
  entries.  Link-transit runs are lifted into ``(times, seq, payload)``
  arrays and their next-event times are computed with array math over
  the network stream's active draw-ahead block; a batch is *validated*
  incrementally -- the moment a processed item schedules work before
  the next item's timestamp, the unprocessed tail is pushed back
  untouched (no draws were made for it), so event order -- and
  therefore every random stream -- is bit-identical to the reference
  loop.  Open-loop launch trains are lifted out of the heap into a
  sorted flat list and merged back lazily, so heap operations run on a
  heap that only holds the in-flight working set.

* **Inline draw serving.**  The fused handlers serve the two cheap
  :class:`~repro.sim.sampling.BatchedStream` cases in place -- a
  block-mode draw (cursor bump) and the plain scalar forward --
  updating the stream's run/threshold accounting exactly as the
  facade would, and fall back to the facade method for everything
  else (refill, reconcile, promotion), so block-formation decisions
  and the served value sequence are unchanged.

Fallback: anything the kernel does not recognise -- a cancellable
:class:`~repro.sim.engine.Event`, an obs-traced component, a custom
subclass overriding a hot-path method, a balancer/fanout/tiered
service -- is executed through the ordinary scalar path (and counted
in ``kernel_scalar_fallbacks``).  Correctness never depends on
adoption; adoption only removes interpreter overhead.

numpy is the only requirement.  numba, when importable, accelerates
the batch-validation scan opportunistically; it is never required
(:data:`KERNEL_JIT` reports whether it engaged).
"""

from __future__ import annotations

import difflib
import importlib.util
import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import SimulationError, SpecValidationError
from repro.sim.engine import Simulator
from repro.sim.sampling import _NORMAL, _UNIFORM, BatchedStream

__all__ = [
    "BATCH_MAX",
    "DEFAULT_ENGINE",
    "ENGINES",
    "KERNEL_JIT",
    "KernelSimulator",
    "describe_engine",
    "engine_names",
    "make_simulator",
    "validate_engine_name",
]

#: Longest same-callback prefix the kernel will dequeue as one batch.
#: Bounds the push-back cost when a batch is cut short by validation.
BATCH_MAX = 64

#: Minimum link-transit run length worth lifting into arrays; shorter
#: runs go through the fused scalar handler (array setup would cost
#: more than it saves).
VECTOR_MIN = 8

#: Serialization cost per KB (mirrors repro.net.link.US_PER_KB_10GBE;
#: asserted equal at dispatch build).
_US_PER_KB = 0.8

#: Deep-sleep residency threshold (mirrors repro.hardware.core).
_DEEP_SLEEP_US = 20.0

#: Dynamic-uncore ramp-down gap (mirrors repro.hardware.uncore).
_UNCORE_GAP_US = 100.0

#: Menu-governor prediction noise (mirrors CStateGovernor).
_PRED_NOISE = 0.25

_exp = math.exp

# The fused loop compares stream kinds against literal ints; pin the
# facade's encoding so a drive-by renumbering cannot silently break
# bit-identity.
if _UNIFORM != 0 or _NORMAL != 1:  # pragma: no cover - import guard
    raise AssertionError("BatchedStream kind encoding changed")


def _commit_length_py(times: Any, push_times: Any, n: int) -> int:
    """Longest batch prefix whose scheduled work never precedes the
    next batch item.

    ``times`` are the batch items' own timestamps, ``push_times`` the
    timestamps of the events each item will schedule.  Item ``i`` is
    safe when no event pushed by items ``0..i`` lands strictly before
    ``times[i + 1]``; the running minimum implements that exactly.
    """
    floor = push_times[0]
    for i in range(1, n):
        if floor < times[i]:
            return i
        pt = push_times[i]
        if pt < floor:
            floor = pt
    return n


#: True when numba compiled the validation scan (never required).
KERNEL_JIT = False
_commit_length_nb: Any = None
if importlib.util.find_spec("numba") is not None:  # pragma: no cover
    try:
        import numba

        _commit_length_nb = numba.njit(cache=True)(_commit_length_py)
        _commit_length_nb(np.zeros(1), np.zeros(1), 1)  # force compile
        KERNEL_JIT = True
    except Exception:
        _commit_length_nb = None
        KERNEL_JIT = False


# Handler opcodes.  DO_SEND/AT_NIC share one fused client-core body.
_OP_LAUNCH = 0
_OP_DO_SEND = 1
_OP_AT_NIC = 2
_OP_SENT = 3
_OP_SUBMIT = 4
_OP_FINISH = 5
_OP_MEASURED = 6


class _K:
    """A pre-resolved continuation: opcode + context + the reference
    callback it stands for.

    Kernel-scheduled heap entries carry one of these in the callback
    slot; the main loop resolves it with a single ``type`` test.  It
    is callable as the underlying reference callback, so an entry (or
    a continuation riding in an args tuple) that escapes to the scalar
    world -- ``step()``, ``run(max_events)``, an aborted run -- still
    fires correctly.
    """

    __slots__ = ("op", "data", "cb")

    def __init__(self, op: int, data: Any, cb: Callable[..., Any]) -> None:
        self.op = op
        self.data = data
        self.cb = cb

    def __call__(self, *args: Any) -> Any:
        return self.cb(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_K op={self.op} {self.cb!r}>"


# ---------------------------------------------------------------- contexts
class _MC:
    """Per-:class:`ClientMachine` context: every constant the fused
    client-core handlers need, hoisted once at dispatch build."""

    __slots__ = ("machine", "do_send", "ts", "send_work", "recv_work",
                 "core", "rng", "oscale", "polling", "slack", "freq",
                 "cpoll", "ctable", "tick", "unc_dyn", "unc_pen",
                 "twake", "nghz", "ramp", "gramps", "sfn_u", "sfn_n",
                 "k_do_send")

    def __init__(self, machine: Any) -> None:
        core = machine.core
        self.machine = machine
        self.do_send = machine._do_send
        self.ts = machine.time_sensitive
        self.send_work = machine.send_work_us
        self.recv_work = machine.recv_work_us
        self.core = core
        rng = core._rng
        self.rng = rng
        self.oscale = core.overhead_scale
        self.polling = core.polling
        self.slack = core.timer._slack_us
        self.freq = core.frequency
        gov = core.cstates
        self.cpoll = gov._poll
        self.ctable = gov._table
        self.tick = gov._tick_limit_us
        uncore = core.uncore
        self.unc_dyn = uncore._dynamic
        self.unc_pen = uncore._params.uncore_dynamic_penalty_us
        self.twake = core._thread_wake_us
        self.nghz = core._nominal_ghz
        self.ramp = core._wake_dvfs_ramp_us
        self.gramps = core._governor_ramps
        # Inline scalar-forward fast path: only for the exact facade
        # (a subclass could override the draw methods).
        sfns: Any = (rng._scalar_fns if type(rng) is BatchedStream
                     else (None, None))
        self.sfn_u = sfns[0]
        self.sfn_n = sfns[1]
        self.k_do_send = _K(_OP_DO_SEND, self, self.do_send)


class _GC:
    """Per-:class:`LoadGenerator` context."""

    __slots__ = ("gen", "sent", "served", "at_nic", "measured", "record",
                 "after", "link_s", "link_c", "submit_cb",
                 "stream_s", "s_mu", "s_sigma", "s_mean", "draw_s", "obs_s",
                 "stream_c", "c_mu", "c_sigma", "c_mean", "draw_c", "obs_c",
                 "k_sent", "k_at_nic", "k_measured",
                 "push_sent", "push_at_nic", "push_measured", "push_submit",
                 "rs", "rbuf")

    def __init__(self, gen: Any, after: Optional[Callable[..., None]],
                 stream_s: Optional[BatchedStream],
                 stream_c: Optional[BatchedStream]) -> None:
        self.gen = gen
        self.sent = gen._sent
        self.served = gen._served
        self.at_nic = gen._at_client_nic
        self.measured = gen._measured
        self.record = gen.samples.record
        self.after = after
        link_s = gen._link_to_server
        link_c = gen._link_to_client
        self.link_s = link_s
        self.link_c = link_c
        self.submit_cb = gen.service.submit
        self.stream_s = stream_s
        self.s_mu = link_s._mu
        self.s_sigma = link_s._sigma
        self.s_mean = link_s._mean
        self.draw_s = link_s._draw
        self.obs_s = link_s.observer
        self.stream_c = stream_c
        self.c_mu = link_c._mu
        self.c_sigma = link_c._sigma
        self.c_mean = link_c._mean
        self.draw_c = link_c._draw
        self.obs_c = link_c.observer
        self.k_sent = _K(_OP_SENT, self, self.sent)
        self.k_at_nic = _K(_OP_AT_NIC, self, self.at_nic)
        self.k_measured = _K(_OP_MEASURED, self, self.measured)
        # Continuations the fused handlers *push*.  These stay the raw
        # reference callbacks unless the dispatch build proves the
        # stock implementation is in effect (an overridden hook must
        # keep receiving its scalar call).
        self.push_sent: Any = self.sent
        self.push_at_nic: Any = self.at_nic
        self.push_measured: Any = self.measured
        self.push_submit: Any = self.submit_cb
        # Deferred recording (dispatch build enables it when the stock
        # RunSamples/SampleColumns pair is in place and there is no
        # completion hook): completed requests buffer in rbuf and
        # flush in order through rs.record_batch.
        self.rs: Any = None
        self.rbuf: Any = None


class _SC:
    """Per-:class:`ServiceStation` context."""

    __slots__ = ("station", "pool", "queue", "items", "sample", "rng",
                 "env", "smt_on", "intensity", "broad_us", "int_scale",
                 "int_mean", "kstack", "smtf", "fscale", "num", "cpoll",
                 "ctable", "tick", "pool_done", "service_time",
                 "finish_cb", "obs_on", "k_finish", "sstream",
                 "ssfn_u", "ssfn_n",
                 "skind", "smu", "ssigma", "sukb", "cdone", "cgc")

    def __init__(self, station: Any) -> None:
        pool = station._pool
        smt = station._smt
        gov = station._cstates
        self.station = station
        self.pool = pool
        self.queue = pool.queue
        self.items = pool.queue._items
        self.sample = station.service_model.sample_service_us
        rng = station._rng
        self.rng = rng
        self.env = station._env_scale
        self.smt_on = smt.smt_enabled
        self.intensity = smt.run_intensity
        self.broad_us = smt._broad_us
        self.int_scale = smt._interference_scale
        self.int_mean = smt._interference_mean_us
        self.kstack = station._kernel_stack_us
        self.smtf = station._smt_factor
        self.fscale = station._freq_scale
        self.num = pool.num_servers
        self.cpoll = gov._poll
        self.ctable = gov._table
        self.tick = gov._tick_limit_us
        self.pool_done = station._pool_done
        self.service_time = station._service_time
        self.finish_cb = pool._finish
        self.obs_on = pool._obs is not None
        self.k_finish = _K(_OP_FINISH, self, self.finish_cb)
        self.sstream = rng if type(rng) is BatchedStream else None
        if self.sstream is not None:
            self.ssfn_u = rng._scalar_fns[0]
            self.ssfn_n = rng._scalar_fns[1]
        else:
            self.ssfn_u = None
            self.ssfn_n = None
        # One-entry cache for the served-callback -> generator lookup
        # (stations overwhelmingly serve a single generator, and the
        # kernel pushes one stable bound method for it).
        self.cdone: Any = None
        self.cgc: Any = None
        # Service-model specialization: the two stock lognormal-core
        # models can be sampled inline off the station stream's active
        # block.  Exact types only -- a subclass keeps the generic
        # ``sample_service_us`` call.
        from repro.server.service import LognormalService
        from repro.workloads.memcached import EtcServiceModel

        self.skind = 0
        self.smu = 0.0
        self.ssigma = 0.0
        self.sukb = 0.0
        model = station.service_model
        base = None
        kind = 0
        if type(model) is EtcServiceModel:
            if type(model._base) is LognormalService:
                base = model._base
                kind = 2
                self.sukb = EtcServiceModel.US_PER_KB
        elif type(model) is LognormalService:
            base = model
            kind = 1
        if (base is not None and self.sstream is not None
                and base._sigma != 0):
            self.skind = kind
            self.smu = base._mu
            self.ssigma = base._sigma


# ------------------------------------------------------------------ kernel
class KernelSimulator(Simulator):
    """Batch-dequeue accelerated simulator (``engine="vectorized"``).

    Bit-identical to :class:`~repro.sim.engine.Simulator` by
    construction: adopted components run through fused handlers that
    replicate the reference float arithmetic and draw order exactly;
    everything else falls back to the ordinary scalar dispatch.
    """

    def __init__(self) -> None:
        super().__init__()
        #: same-callback runs of length >= 2 processed by the kernel.
        self.kernel_batches = 0
        #: events processed inside those runs.
        self.kernel_batched_events = 0
        #: events executed through the scalar fallback path.
        self.kernel_scalar_fallbacks = 0
        self._adopted_generators: list = []
        self._adopted_stations: list = []
        self._dispatch: Optional[Dict[Any, Tuple[int, Any]]] = None
        self._minfo: Dict[Any, _MC] = {}
        self._served_map: Dict[Any, _GC] = {}
        self._rec_gcs: list = []

    def _flush_records(self) -> None:
        """Drain deferred completion records into their RunSamples.

        Called before every foreign call and at kernel exit so that
        code outside the fused loop always observes fully recorded
        samples, in exact completion order.
        """
        for gc in self._rec_gcs:
            buf = gc.rbuf
            if buf:
                gc.rs.record_batch(buf)
                del buf[:]

    # ------------------------------------------------------------ adoption
    def adopt_generator(self, generator: Any) -> None:
        """Hook called by :class:`LoadGenerator` at construction."""
        self._adopted_generators.append(generator)
        self._dispatch = None

    def adopt_station(self, station: Any) -> None:
        """Hook called by :class:`ServiceStation` at construction."""
        self._adopted_stations.append(station)
        self._dispatch = None

    def kernel_counters(self) -> Dict[str, float]:
        """Snapshot of the kernel's engagement telemetry."""
        batches = self.kernel_batches
        batched = self.kernel_batched_events
        return {
            "batches": float(batches),
            "batched_events": float(batched),
            "scalar_fallbacks": float(self.kernel_scalar_fallbacks),
            "mean_batch_len": (batched / batches) if batches else 0.0,
        }

    # ------------------------------------------------------------- build
    def _build_dispatch(self) -> Dict[Any, Tuple[int, Any]]:
        """Map stable bound-method callbacks to fused handlers.

        Adoption is per-method and conservative: a generator, machine
        or station qualifies only when the exact reference
        implementation would run (no tracer, no overridden hot-path
        method, no bounded queue).  Anything that fails a check simply
        keeps its scalar path.
        """
        from repro.hardware.core import SimCore
        from repro.hardware.cstates import CStateGovernor
        from repro.hardware.frequency import FrequencyModel
        from repro.hardware.timer import TimerModel
        from repro.hardware.uncore import UncoreModel
        from repro.loadgen.base import LoadGenerator
        from repro.loadgen.client_machine import ClientMachine
        from repro.loadgen.measurement import RunSamples
        from repro.net.link import US_PER_KB_10GBE, NetworkLink
        from repro.server.station import ServiceStation
        from repro.sim.resources import ServerPool
        from repro.telemetry.columns import SampleColumns

        assert US_PER_KB_10GBE == _US_PER_KB

        dispatch: Dict[Any, Tuple[int, Any]] = {}
        minfo: Dict[Any, _MC] = {}
        served: Dict[Any, _GC] = {}
        rec_gcs: list = []
        self._minfo = minfo
        self._served_map = served
        self._rec_gcs = rec_gcs

        # Stations first: generators resolve their submit target
        # against the station entries below.
        for station in self._adopted_stations:
            if not isinstance(station, ServiceStation):
                continue
            if station._trace is not None:
                continue
            cls = type(station)
            pool = station._pool
            if not (cls.submit is ServiceStation.submit
                    and cls._pool_done is ServiceStation._pool_done
                    and cls._service_time is ServiceStation._service_time
                    and cls._sample_occupancy_us
                    is ServiceStation._sample_occupancy_us
                    and type(pool) is ServerPool
                    and pool.queue.capacity is None
                    and type(station._cstates) is CStateGovernor):
                continue
            sc = _SC(station)
            dispatch[station.submit] = (_OP_SUBMIT, sc)
            dispatch[sc.finish_cb] = (_OP_FINISH, sc)

        def machine_ok(machine: Any) -> bool:
            cls = type(machine)
            core = machine.core
            return (cls.begin_send is ClientMachine.begin_send
                    and cls._do_send is ClientMachine._do_send
                    and cls.deliver_response is ClientMachine.deliver_response
                    and type(core) is SimCore
                    and type(core.cstates) is CStateGovernor
                    and type(core.frequency) is FrequencyModel
                    and type(core.timer) is TimerModel
                    and type(core.uncore) is UncoreModel)

        for gen in self._adopted_generators:
            if not isinstance(gen, LoadGenerator) or gen._trace is not None:
                continue
            cls = type(gen)
            for machine in gen.machines:
                if machine not in minfo and machine_ok(machine):
                    mc = _MC(machine)
                    minfo[machine] = mc
                    dispatch[mc.do_send] = (_OP_DO_SEND, mc)
            link_s = gen._link_to_server
            link_c = gen._link_to_client
            links_ok = (type(link_s) is NetworkLink
                        and type(link_c) is NetworkLink)
            if not links_ok:
                continue
            stream_s = getattr(link_s._draw, "__self__", None)
            if type(stream_s) is not BatchedStream:
                stream_s = None
            stream_c = getattr(link_c._draw, "__self__", None)
            if type(stream_c) is not BatchedStream:
                stream_c = None
            after: Optional[Callable[..., None]] = gen._after_completion
            if cls._after_completion is LoadGenerator._after_completion:
                after = None
            gc = _GC(gen, after, stream_s, stream_c)
            if cls._launch is LoadGenerator._launch:
                dispatch[gc.gen._launch] = (_OP_LAUNCH, gc)
            if cls._sent is LoadGenerator._sent:
                dispatch[gc.sent] = (_OP_SENT, gc)
                gc.push_sent = gc.k_sent
            if cls._at_client_nic is LoadGenerator._at_client_nic:
                dispatch[gc.at_nic] = (_OP_AT_NIC, gc)
                gc.push_at_nic = gc.k_at_nic
            if cls._measured is LoadGenerator._measured:
                dispatch[gc.measured] = (_OP_MEASURED, gc)
                gc.push_measured = gc.k_measured
                samples = gen.samples
                if (after is None
                        and type(samples) is RunSamples
                        and type(samples._columns) is SampleColumns):
                    gc.rs = samples
                    gc.rbuf = []
                    rec_gcs.append(gc)
            if cls._served is LoadGenerator._served:
                served[gc.served] = gc
            sub = dispatch.get(gc.submit_cb)
            if sub is not None and sub[0] == _OP_SUBMIT:
                gc.push_submit = _K(_OP_SUBMIT, sub[1], gc.submit_cb)

        self._dispatch = dispatch
        return dispatch

    # --------------------------------------------------------------- run
    def run(self, max_events: Optional[int] = None) -> int:
        if max_events is not None:
            return super().run(max_events)
        dispatch = self._dispatch
        if dispatch is None:
            dispatch = self._build_dispatch()
        return self._run_kernel(dispatch)

    def _run_kernel(self, dispatch: Dict[Any, Tuple[int, Any]]) -> int:
        # The fused main loop.  Structural notes:
        #
        # * Launch-train extraction.  Open-loop runs pre-arm every
        #   arrival up front, so the heap starts ~num_requests deep
        #   and every push/pop pays log(num_requests) all run long
        #   while the live working set is only the in-flight events.
        #   The kernel lifts the pre-armed admission entries (already
        #   sorted) out of the heap into a flat train and merges them
        #   back lazily: next event = min(heap top, train head) by the
        #   exact (time, seq) tuple order the heap would have used, so
        #   the firing order is unchanged while heap operations run on
        #   a heap that is orders of magnitude shallower.  The train
        #   lives in loop locals; an abort restores it to the heap in
        #   the finally block.
        #
        # * Deferred clock.  ``now`` lives in a local; ``self._now`` is
        #   written back immediately before any foreign call (scalar
        #   callbacks, pool._dispatch, completion hooks) and in the
        #   finally block, and ``now``/``heap`` are refetched after
        #   every foreign call (a callback may cancel events, and
        #   _note_cancelled's compaction *rebinds* self._heap).
        #
        # * Run continuation.  Consecutive entries sharing one _K keep
        #   flowing through one fused handler without re-entering
        #   dispatch.  An event scheduled by item i that lands before
        #   item i+1 displaces it from the heap top, ending the run
        #   naturally -- exactly the reference's interleaving, with no
        #   draw ever rewound.
        fired = 0
        batches = 0
        batched = 0
        scalar = 0
        now = self._now
        seqc = self._seq
        nseq = seqc.__next__
        minfo_get = self._minfo.get
        dispatch_get = dispatch.get
        served_get = self._served_map.get
        flushrec = self._flush_records
        Kt = _K

        heap = self._heap
        train: list = []
        train_d: list = []
        if dispatch:
            keep = []
            for e in heap:
                if len(e) == 4:
                    hd = dispatch_get(e[2])
                    if hd is not None and hd[0] == 0:  # _OP_LAUNCH
                        train.append(e)
                        continue
                keep.append(e)
            if train:
                train.sort()
                train_d = [dispatch[e[2]][1] for e in train]
                heap[:] = keep
                heapify(heap)
        ti = 0
        tn = len(train)
        head = train[0] if tn else None
        prev_key = None
        run_len = 0
        try:
            while True:
                # Train-aware selection: strict heap order over both
                # sources (seqs are unique, so tuple compare never
                # reaches the callback element).  The train head lives
                # in a local and only changes when the train advances.
                if head is None:
                    if heap:
                        entry = heappop(heap)
                        from_train = False
                    else:
                        break
                elif heap and heap[0] < head:
                    entry = heappop(heap)
                    from_train = False
                else:
                    entry = head
                    from_train = True

                # Resolve the continuation: train entries are known
                # launches; kernel-pushed entries carry a _K; anything
                # else probes the dispatch dict or runs scalar.
                h = entry[2]
                if from_train:
                    ti += 1
                    head = train[ti] if ti < tn else None
                    op = 0  # _OP_LAUNCH
                    data = train_d[ti - 1]
                    key = data
                elif type(h) is Kt:
                    op = h.op
                    data = h.data
                    key = h
                elif len(entry) == 3:
                    event = h
                    if event.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    event.fired = True
                    time = entry[0]
                    if time > now:
                        now = time
                    elif time < now - 1e-9:
                        raise SimulationError(
                            f"event at t={time} is behind clock t={now}"
                        )
                    if run_len >= 2:
                        batches += 1
                        batched += run_len
                    run_len = 0
                    prev_key = None
                    fired += 1
                    scalar += 1
                    self._now = now
                    flushrec()
                    event.callback(*event.args)
                    now = self._now
                    heap = self._heap
                    continue
                else:
                    handler = dispatch_get(h)
                    if handler is None:
                        time = entry[0]
                        if time > now:
                            now = time
                        elif time < now - 1e-9:
                            raise SimulationError(
                                f"event at t={time} is behind clock t={now}"
                            )
                        if run_len >= 2:
                            batches += 1
                            batched += run_len
                        run_len = 0
                        prev_key = None
                        fired += 1
                        scalar += 1
                        self._now = now
                        flushrec()
                        h(*entry[3])
                        now = self._now
                        heap = self._heap
                        continue
                    op = handler[0]
                    data = handler[1]
                    key = h

                time = entry[0]
                args = entry[3]
                if time > now:
                    now = time
                elif time < now - 1e-9:
                    raise SimulationError(
                        f"event at t={time} is behind clock t={now}"
                    )
                fired += 1
                if key is prev_key:
                    run_len += 1
                else:
                    if run_len >= 2:
                        batches += 1
                        batched += run_len
                    prev_key = key
                    run_len = 1

                if op == 1 or op == 2:  # _OP_DO_SEND / _OP_AT_NIC
                    # Client core event: one fused
                    # SimCore.handle_event_finish_us body for both the
                    # send and the receive side -- identical branches,
                    # float expressions and draw sequence, with the
                    # C-state governor, uncore and frequency fast
                    # paths inlined (stateful slow paths still
                    # delegate to the model objects).
                    if op == 1:
                        mc = data
                        work = mc.send_work
                        wt = args[0]
                    else:
                        mc = minfo_get(args[0])
                        if mc is None:
                            run_len = 0
                            prev_key = None
                            scalar += 1
                            self._now = now
                            flushrec()
                            cbx = h.cb if type(h) is Kt else h
                            cbx(*args)
                            now = self._now
                            heap = self._heap
                            continue
                        args[1].client_nic_us = now
                        work = mc.recv_work
                        wt = mc.ts
                    core = mc.core
                    if now < core._last_arrival - 1e-9:
                        raise ValueError(
                            f"event at {now} precedes earlier arrival "
                            f"{core._last_arrival}"
                        )
                    core._last_arrival = now
                    gap = core._available_at - now
                    if gap > 0.0:
                        queue_wait = gap
                        idle_gap = 0.0
                    else:
                        queue_wait = 0.0
                        idle_gap = -gap if gap < 0.0 else 0.0
                    start = now + queue_wait
                    wake = 0.0
                    dvfs = 0.0
                    unc = 0.0
                    cswitch = 0.0
                    freq_model = mc.freq
                    if mc.polling:
                        if idle_gap > 0:
                            freq_model._busy_accum_us += idle_gap
                    elif queue_wait == 0.0:
                        # CStateGovernor.wake_and_state, inlined.
                        if not mc.cpoll:
                            rng = mc.rng
                            predicted = idle_gap
                            if rng is not None and idle_gap > 0:
                                sfn = mc.sfn_n
                                if sfn is not None and rng._buf is None:
                                    if rng._kind == 1:
                                        r = rng._run + 1
                                        if r < rng._threshold:
                                            rng._run = r
                                            rng.scalar_served += 1
                                            sn = float(sfn())
                                        else:
                                            sn = rng.standard_normal()
                                    else:
                                        rng._kind = 1
                                        rng._run = 1
                                        rng.scalar_served += 1
                                        sn = float(sfn())
                                else:
                                    sn = rng.standard_normal()
                                noise = 1.0 + _PRED_NOISE * sn
                                if noise < 0.0:
                                    noise = 0.0
                                predicted = idle_gap * noise
                            tick = mc.tick
                            if tick is not None and predicted > tick:
                                predicted = tick
                            table = mc.ctable
                            chosen = table[0][1]
                            for target_residency, spec in table:
                                if target_residency <= predicted:
                                    chosen = spec
                            wake = chosen.exit_latency_us
                            if wake > idle_gap:
                                wake = idle_gap
                            if (wake > 0.0 and mc.gramps
                                    and chosen.target_residency_us
                                    >= _DEEP_SLEEP_US):
                                dvfs = mc.ramp
                        if mc.unc_dyn and idle_gap > _UNCORE_GAP_US:
                            unc = mc.unc_pen
                        if wt:
                            cswitch = mc.twake
                    # FrequencyModel.evaluate_fast, steady branch.
                    if (start - freq_model._window_start
                            < freq_model._interval_us):
                        freq, stall = freq_model._steady
                    else:
                        freq, stall = freq_model.evaluate_fast(start)
                    if mc.polling:
                        stall = 0.0
                    overhead = (wake + dvfs + unc + cswitch
                                + stall) * mc.oscale
                    work_us = work * (mc.nghz / freq)
                    finish = start + overhead + work_us
                    busy = finish - start
                    freq_model._busy_accum_us += busy
                    core.total_busy_us += busy
                    core.total_wake_us += wake
                    core.events_handled += 1
                    core._available_at = finish
                    if op == 1:
                        mc.machine.requests_sent += 1
                        heappush(heap, (now + (finish - now), nseq(),
                                        args[1], args[2] + (finish,)))
                    else:
                        mc.machine.responses_handled += 1
                        heappush(heap, (now + (finish - now), nseq(),
                                        data.push_measured,
                                        (args[0], args[1], finish)))
                elif op == 3:  # _OP_SENT
                    # Link transit client->server.  Runs long enough
                    # to amortize array setup are lifted whole into
                    # (times, seq, payload) arrays.
                    gcs = data
                    if run_len == 1 and len(heap) >= VECTOR_MIN - 1:
                        if (heap[0][2] is key
                                and self._sent_batch(
                                    gcs, key, heap, entry, now, nseq,
                                    head)):
                            processed = self._sent_batch_n
                            fired += processed - 1
                            run_len = processed
                            now = self._now
                            continue
                    request = args[1]
                    request.actual_send_us = args[2]
                    draw = gcs.draw_s
                    if draw is None:
                        base = gcs.s_mean
                    else:
                        st = gcs.stream_s
                        if (st is not None and st._kind == 1
                                and st._buf is not None
                                and st._cursor < st._buflen):
                            i = st._cursor
                            st._cursor = i + 1
                            st.batched_served += 1
                            base = _exp(gcs.s_mu
                                        + gcs.s_sigma * st._buf[i])
                        else:
                            base = float(draw(gcs.s_mu, gcs.s_sigma))
                    observer = gcs.obs_s
                    kb = request.size_kb
                    if observer is not None:
                        observer.messages += 1
                        observer.kb += kb
                    delay = base + kb * _US_PER_KB if kb > 0.0 else base
                    heappush(heap, (now + delay, nseq(), gcs.push_submit,
                                    (request, gcs.served, args[0])))
                elif op == 5:  # _OP_FINISH
                    sc = data
                    server = args[0]
                    job = args[1]
                    pool = sc.pool
                    pool.idle_since[server] = now
                    idle = pool._idle_servers
                    idle.append(server)
                    pool.jobs_completed += 1
                    done_fn = args[3]
                    if done_fn is sc.pool_done or done_fn == sc.pool_done:
                        dctx = args[4]
                        job.queue_wait_us += args[2]
                        job.server_departure_us = now
                        real_done = dctx[0]
                        rctx = dctx[1]
                        if real_done is sc.cdone:
                            gcf = sc.cgc
                        else:
                            gcf = served_get(real_done)
                            sc.cdone = real_done
                            sc.cgc = gcf
                        if gcf is not None:
                            # Fused _served: link transit back.
                            draw = gcf.draw_c
                            kb = job.size_kb
                            if draw is None:
                                base = gcf.c_mean
                            else:
                                st = gcf.stream_c
                                if (st is not None and st._kind == 1
                                        and st._buf is not None
                                        and st._cursor < st._buflen):
                                    i = st._cursor
                                    st._cursor = i + 1
                                    st.batched_served += 1
                                    base = _exp(gcf.c_mu
                                                + gcf.c_sigma * st._buf[i])
                                else:
                                    base = float(draw(gcf.c_mu,
                                                      gcf.c_sigma))
                            observer = gcf.obs_c
                            if observer is not None:
                                observer.messages += 1
                                observer.kb += kb
                            delay = (base + kb * _US_PER_KB
                                     if kb > 0.0 else base)
                            heappush(heap, (now + delay, nseq(),
                                            gcf.push_at_nic,
                                            (rctx[0], job)))
                        else:
                            self._now = now
                            flushrec()
                            real_done(job, *rctx)
                            now = self._now
                            heap = self._heap
                    else:
                        self._now = now
                        flushrec()
                        done_fn(job, args[2], *args[4])
                        now = self._now
                        heap = self._heap
                    # ServerPool._dispatch tail: the overwhelmingly
                    # common case -- one freed worker picks up one
                    # queued job through the stock service-time
                    # callback -- is inlined; anything else restores
                    # the popped state and delegates.
                    items = sc.items
                    if items and idle:
                        server2 = idle.pop()
                        enq, item = items.popleft()
                        stf = item[1]
                        if stf is sc.service_time or stf == sc.service_time:
                            job2 = item[0]
                            waited2 = now - enq
                            idle_gap = now - pool.idle_since[server2]
                            # Fused _sample_occupancy_us (below, twice:
                            # here and in the SUBMIT fast path).
                            rng = sc.rng
                            busy_m1 = sc.num - len(idle) - 1
                            if busy_m1 < 0:
                                busy_m1 = 0
                            utilization = busy_m1 / sc.num
                            skind = sc.skind
                            if skind:
                                st = sc.sstream
                                if st._kind == 1:
                                    buf = st._buf
                                    if buf is not None:
                                        i = st._cursor
                                        if i < st._buflen:
                                            st._cursor = i + 1
                                            st.batched_served += 1
                                            z = buf[i]
                                        else:
                                            z = float(st.standard_normal())
                                    else:
                                        r = st._run + 1
                                        if r < st._threshold:
                                            st._run = r
                                            st.scalar_served += 1
                                            z = float(sc.ssfn_n())
                                        else:
                                            z = float(st.standard_normal())
                                elif st._buf is None:
                                    st._kind = 1
                                    st._run = 1
                                    st.scalar_served += 1
                                    z = float(sc.ssfn_n())
                                else:
                                    z = float(st.standard_normal())
                                base = _exp(sc.smu + sc.ssigma * z)
                                if skind == 2:
                                    base += job2.size_kb * sc.sukb
                            else:
                                self._now = now
                                flushrec()
                                base = sc.sample(rng, job2)
                                heap = self._heap
                            base = (base + sc.kstack) * sc.env
                            base *= sc.smtf
                            if not sc.smt_on:
                                u = utilization
                                if u < 0.0:
                                    u = 0.0
                                elif u > 1.0:
                                    u = 1.0
                                intensity = sc.intensity
                                broad = u * intensity * sc.broad_us
                                probability = sc.int_scale * u * intensity
                                if probability > 1.0:
                                    probability = 1.0
                                if rng is None:
                                    base += broad + probability * sc.int_mean
                                else:
                                    st = sc.sstream
                                    if st is None:
                                        uu = rng.random()
                                    elif st._kind == 0:
                                        buf = st._buf
                                        if buf is not None:
                                            i = st._cursor
                                            if i < st._buflen:
                                                st._cursor = i + 1
                                                st.batched_served += 1
                                                uu = buf[i]
                                            else:
                                                uu = st.random()
                                        else:
                                            r = st._run + 1
                                            if r < st._threshold:
                                                st._run = r
                                                st.scalar_served += 1
                                                uu = float(sc.ssfn_u())
                                            else:
                                                uu = st.random()
                                    elif st._buf is None:
                                        st._kind = 0
                                        st._run = 1
                                        st.scalar_served += 1
                                        uu = float(sc.ssfn_u())
                                    else:
                                        uu = st.random()
                                    if uu < probability:
                                        base += (broad + sc.int_mean
                                                 * rng.standard_exponential())
                                    else:
                                        base += broad
                            scaled = base * sc.fscale
                            if sc.cpoll:
                                wake = 0.0
                            else:
                                predicted = idle_gap
                                if rng is not None and idle_gap > 0:
                                    st = sc.sstream
                                    if st is None:
                                        sn = rng.standard_normal()
                                    elif st._kind == 1:
                                        buf = st._buf
                                        if buf is not None:
                                            i = st._cursor
                                            if i < st._buflen:
                                                st._cursor = i + 1
                                                st.batched_served += 1
                                                sn = buf[i]
                                            else:
                                                sn = st.standard_normal()
                                        else:
                                            r = st._run + 1
                                            if r < st._threshold:
                                                st._run = r
                                                st.scalar_served += 1
                                                sn = float(sc.ssfn_n())
                                            else:
                                                sn = st.standard_normal()
                                    elif st._buf is None:
                                        st._kind = 1
                                        st._run = 1
                                        st.scalar_served += 1
                                        sn = float(sc.ssfn_n())
                                    else:
                                        sn = st.standard_normal()
                                    noise = 1.0 + _PRED_NOISE * sn
                                    if noise < 0.0:
                                        noise = 0.0
                                    predicted = idle_gap * noise
                                tick = sc.tick
                                if tick is not None and predicted > tick:
                                    predicted = tick
                                table = sc.ctable
                                chosen = table[0][1]
                                for target_residency, spec in table:
                                    if target_residency <= predicted:
                                        chosen = spec
                                wake = chosen.exit_latency_us
                                if wake > idle_gap:
                                    wake = idle_gap
                            occupancy = scaled + wake
                            job2.service_us += occupancy
                            if occupancy < 0:
                                raise SimulationError(
                                    f"negative service time {occupancy} "
                                    f"for job {job2!r}")
                            pool.busy_time_us += occupancy
                            heappush(heap, (now + occupancy, nseq(),
                                            sc.k_finish,
                                            (server2, job2, waited2,
                                             item[2], item[3])))
                            if items and idle:
                                self._now = now
                                flushrec()
                                pool._dispatch()
                                now = self._now
                                heap = self._heap
                        else:
                            idle.append(server2)
                            items.appendleft((enq, item))
                            self._now = now
                            flushrec()
                            pool._dispatch()
                            now = self._now
                            heap = self._heap
                elif op == 4:  # _OP_SUBMIT
                    sc = data
                    request = args[0]
                    if request.server_arrival_us == 0.0:
                        request.server_arrival_us = now
                    pool = sc.pool
                    idle = pool._idle_servers
                    items = sc.items
                    if idle and not items:
                        # Fast path: a worker is free, zero wait.
                        sc.queue.total_enqueued += 1
                        server = idle.pop()
                        idle_gap = now - pool.idle_since[server]
                        rng = sc.rng
                        busy_m1 = sc.num - len(idle) - 1
                        if busy_m1 < 0:
                            busy_m1 = 0
                        utilization = busy_m1 / sc.num
                        skind = sc.skind
                        if skind:
                            st = sc.sstream
                            if st._kind == 1:
                                buf = st._buf
                                if buf is not None:
                                    i = st._cursor
                                    if i < st._buflen:
                                        st._cursor = i + 1
                                        st.batched_served += 1
                                        z = buf[i]
                                    else:
                                        z = float(st.standard_normal())
                                else:
                                    r = st._run + 1
                                    if r < st._threshold:
                                        st._run = r
                                        st.scalar_served += 1
                                        z = float(sc.ssfn_n())
                                    else:
                                        z = float(st.standard_normal())
                            elif st._buf is None:
                                st._kind = 1
                                st._run = 1
                                st.scalar_served += 1
                                z = float(sc.ssfn_n())
                            else:
                                z = float(st.standard_normal())
                            base = _exp(sc.smu + sc.ssigma * z)
                            if skind == 2:
                                base += request.size_kb * sc.sukb
                        else:
                            self._now = now
                            flushrec()
                            base = sc.sample(rng, request)
                            heap = self._heap
                        base = (base + sc.kstack) * sc.env
                        base *= sc.smtf
                        if not sc.smt_on:
                            u = utilization
                            if u < 0.0:
                                u = 0.0
                            elif u > 1.0:
                                u = 1.0
                            intensity = sc.intensity
                            broad = u * intensity * sc.broad_us
                            probability = sc.int_scale * u * intensity
                            if probability > 1.0:
                                probability = 1.0
                            if rng is None:
                                base += broad + probability * sc.int_mean
                            else:
                                st = sc.sstream
                                if st is None:
                                    uu = rng.random()
                                elif st._kind == 0:
                                    buf = st._buf
                                    if buf is not None:
                                        i = st._cursor
                                        if i < st._buflen:
                                            st._cursor = i + 1
                                            st.batched_served += 1
                                            uu = buf[i]
                                        else:
                                            uu = st.random()
                                    else:
                                        r = st._run + 1
                                        if r < st._threshold:
                                            st._run = r
                                            st.scalar_served += 1
                                            uu = float(sc.ssfn_u())
                                        else:
                                            uu = st.random()
                                elif st._buf is None:
                                    st._kind = 0
                                    st._run = 1
                                    st.scalar_served += 1
                                    uu = float(sc.ssfn_u())
                                else:
                                    uu = st.random()
                                if uu < probability:
                                    base += (broad + sc.int_mean
                                             * rng.standard_exponential())
                                else:
                                    base += broad
                        scaled = base * sc.fscale
                        if sc.cpoll:
                            wake = 0.0
                        else:
                            predicted = idle_gap
                            if rng is not None and idle_gap > 0:
                                st = sc.sstream
                                if st is None:
                                    sn = rng.standard_normal()
                                elif st._kind == 1:
                                    buf = st._buf
                                    if buf is not None:
                                        i = st._cursor
                                        if i < st._buflen:
                                            st._cursor = i + 1
                                            st.batched_served += 1
                                            sn = buf[i]
                                        else:
                                            sn = st.standard_normal()
                                    else:
                                        r = st._run + 1
                                        if r < st._threshold:
                                            st._run = r
                                            st.scalar_served += 1
                                            sn = float(sc.ssfn_n())
                                        else:
                                            sn = st.standard_normal()
                                elif st._buf is None:
                                    st._kind = 1
                                    st._run = 1
                                    st.scalar_served += 1
                                    sn = float(sc.ssfn_n())
                                else:
                                    sn = st.standard_normal()
                                noise = 1.0 + _PRED_NOISE * sn
                                if noise < 0.0:
                                    noise = 0.0
                                predicted = idle_gap * noise
                            tick = sc.tick
                            if tick is not None and predicted > tick:
                                predicted = tick
                            table = sc.ctable
                            chosen = table[0][1]
                            for target_residency, spec in table:
                                if target_residency <= predicted:
                                    chosen = spec
                            wake = chosen.exit_latency_us
                            if wake > idle_gap:
                                wake = idle_gap
                        occupancy = scaled + wake
                        request.service_us += occupancy
                        if occupancy < 0:
                            raise SimulationError(
                                f"negative service time {occupancy} "
                                f"for job {request!r}")
                        pool.busy_time_us += occupancy
                        heappush(heap, (now + occupancy, nseq(),
                                        sc.k_finish,
                                        (server, request, 0.0,
                                         sc.pool_done,
                                         (args[1], args[2:]))))
                    elif not idle:
                        # All workers busy: queue, track depth.
                        items.append(
                            (now, (request, sc.service_time,
                                   sc.pool_done, (args[1], args[2:]))))
                        sc.queue.total_enqueued += 1
                        if sc.obs_on:
                            depth = len(items)
                            if depth > pool.peak_queue_depth:
                                pool.peak_queue_depth = depth
                    else:  # pragma: no cover - invariant guard
                        run_len = 0
                        prev_key = None
                        scalar += 1
                        self._now = now
                        flushrec()
                        cbx = h.cb if type(h) is Kt else h
                        cbx(*args)
                        now = self._now
                        heap = self._heap
                elif op == 0:  # _OP_LAUNCH
                    # Arrival admission: begin_send + timer model.
                    machine = args[0]
                    request = args[1]
                    mc = minfo_get(machine)
                    if mc is None:
                        run_len = 0
                        prev_key = None
                        scalar += 1
                        self._now = now
                        flushrec()
                        cbx = h.cb if type(h) is Kt else h
                        cbx(*args)
                        now = self._now
                        heap = self._heap
                    else:
                        gcl = data
                        intended = request.intended_send_us
                        if mc.ts:
                            target = (intended if intended >= now
                                      else now)
                            rng = mc.rng
                            if rng is None:
                                overshoot = mc.slack / 2.0
                            else:
                                sfn = mc.sfn_u
                                if sfn is not None and rng._buf is None:
                                    if rng._kind == 0:
                                        r = rng._run + 1
                                        if r < rng._threshold:
                                            rng._run = r
                                            rng.scalar_served += 1
                                            u = float(sfn())
                                        else:
                                            u = rng.random()
                                    else:
                                        rng._kind = 0
                                        rng._run = 1
                                        rng.scalar_served += 1
                                        u = float(sfn())
                                else:
                                    u = rng.random()
                                overshoot = mc.slack * u
                            wake = target + overshoot * mc.oscale
                            # post_at arithmetic: now + (t - now).
                            heappush(heap, (now + (wake - now), nseq(),
                                            mc.k_do_send,
                                            (True, gcl.push_sent,
                                             (machine, request))))
                        else:
                            delay = intended - now
                            if not (delay >= 0.0):
                                raise SimulationError(
                                    f"cannot schedule in the past: "
                                    f"{delay!r}")
                            heappush(heap, (now + delay, nseq(),
                                            mc.k_do_send,
                                            (False, gcl.push_sent,
                                             (machine, request))))
                else:  # _OP_MEASURED
                    gcm = data
                    request = args[1]
                    request.measured_complete_us = args[2]
                    rb = gcm.rbuf
                    if rb is not None:
                        # Deferred columnar recording: buffered here,
                        # flushed in completion order before any
                        # foreign call can observe the samples.
                        rb.append(request)
                    else:
                        self._now = now
                        gcm.record(request)
                    gen = gcm.gen
                    gen.completed += 1
                    if gcm.after is not None:
                        self._now = now
                        flushrec()
                        gcm.after(args[0], request)
                        now = self._now
                        heap = self._heap
                    if gen.completed >= gen.num_requests:
                        all_done = gen._on_all_done
                        if all_done:
                            self._now = now
                            flushrec()
                            all_done()
                            now = self._now
                            heap = self._heap
        finally:
            self._now = now
            flushrec()
            heap = self._heap
            if ti < tn:
                # Aborted mid-run: restore the unprocessed train so
                # the heap reflects every pending event again.
                heap.extend(train[ti:])
                heapify(heap)
            # Convert leftover kernel-format entries back to plain
            # reference format (keys are unchanged, so heap order is
            # untouched).  A completed run leaves the heap empty.
            for idx, e in enumerate(heap):
                if len(e) == 4 and type(e[2]) is Kt:
                    heap[idx] = (e[0], e[1], e[2].cb, e[3])
            if run_len >= 2:
                batches += 1
                batched += run_len
            self._events_processed += fired
            self.kernel_batches += batches
            self.kernel_batched_events += batched
            self.kernel_scalar_fallbacks += scalar
        return fired

    # ----------------------------------------------------- vectorized SENT
    _sent_batch_n = 0

    def _sent_batch(self, gc: _GC, key: Any, heap: list, first: tuple,
                    now: float, nseq: Callable[[], int],
                    limit: Optional[tuple]) -> bool:
        """Array-lift a run of link-transit events.

        Pops the maximal same-continuation prefix (up to
        :data:`BATCH_MAX`, bounded by *limit* -- the launch-train
        head, which must fire in between), serves its latency draws
        straight off the network stream's active standard-normal
        block, computes every next-event time with array math,
        validates the batch with a running-minimum scan, and
        re-inserts the committed entries via the heapify bulk path.
        Uncommitted items are pushed back exactly as popped (their
        draws were never consumed: the block cursor advances only by
        the committed prefix).

        Returns False when the run is too short or the stream has no
        suitable block (nothing was consumed -- the caller then runs
        the fused scalar handler on ``first``).
        """
        stream = gc.stream_s
        if stream is None:
            return False
        if stream._kind != _NORMAL or stream._buf is None:
            return False
        if first[0] != now:
            # Epsilon-behind entry: the reference adds delays onto the
            # (larger) clock, not the entry time; take the scalar path.
            return False
        entries = [first]
        while (len(entries) < BATCH_MAX and heap
               and heap[0][2] is key
               and (limit is None or heap[0] < limit)):
            entries.append(heappop(heap))
        n = len(entries)
        cursor = stream._cursor
        if n < VECTOR_MIN or stream._buflen - cursor < n:
            # Put the extras back untouched; scalar handler takes over.
            for extra in entries[1:]:
                heappush(heap, extra)
            return False

        mu = gc.s_mu
        sigma = gc.s_sigma
        buf = stream._buf
        times = [e[0] for e in entries]
        # Next-event times for the whole batch with array math; the
        # transcendental stays scalar libm so each committed value is
        # bit-identical to the reference draw.
        zs = np.asarray(buf[cursor:cursor + n])
        exponents = (mu + sigma * zs).tolist()
        bases = [_exp(v) for v in exponents]
        sizes = np.asarray([e[3][1].size_kb for e in entries])
        delays = np.asarray(bases) + np.where(
            sizes > 0.0, sizes * _US_PER_KB, 0.0)
        times_arr = np.asarray(times)
        push_arr = times_arr + delays
        if _commit_length_nb is not None:  # pragma: no cover - numba
            commit = int(_commit_length_nb(times_arr, push_arr, n))
        else:
            commit = _commit_length_py(times, push_arr.tolist(), n)

        stream._cursor = cursor + commit
        stream.batched_served += commit
        push_times = push_arr.tolist()
        observer = gc.obs_s
        push_submit = gc.push_submit
        served_cb = gc.served
        new_entries = []
        for i in range(commit):
            e_args = entries[i][3]
            request = e_args[1]
            request.actual_send_us = e_args[2]
            if observer is not None:
                observer.messages += 1
                observer.kb += request.size_kb
            new_entries.append((push_times[i], nseq(), push_submit,
                                (request, served_cb, e_args[0])))
        # Re-insert via the post_at_batch path: extend + one heapify.
        heap.extend(new_entries)
        for i in range(commit, n):
            heap.append(entries[i])
        heapify(heap)
        self._now = times[commit - 1]
        self._sent_batch_n = commit
        return True


# ----------------------------------------------------------------- registry
DEFAULT_ENGINE = "reference"

ENGINES: Dict[str, Tuple[Callable[[], Simulator], str]] = {
    "reference": (
        Simulator,
        "pure-Python event loop -- the reference implementation",
    ),
    "vectorized": (
        KernelSimulator,
        "batch-dequeue kernel with fused handlers; bit-identical, "
        "opt-in",
    ),
}


def engine_names() -> Tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(ENGINES))


def validate_engine_name(name: str) -> str:
    """Validate *name* against the registry with a did-you-mean hint.

    Mirrors the sink registry's contract: unknown names fail fast with
    a :class:`~repro.errors.SpecValidationError` before any condition
    executes.
    """
    key = str(name)
    if key in ENGINES:
        return key
    close = difflib.get_close_matches(key, list(ENGINES), n=1)
    hint = f" -- did you mean {close[0]!r}?" if close else ""
    raise SpecValidationError(
        f"unknown engine {key!r}{hint} "
        f"(registered engines: {', '.join(engine_names())})")


def describe_engine(name: str) -> str:
    """One-line description of a registered engine."""
    return ENGINES[validate_engine_name(name)][1]


def make_simulator(name: Optional[str] = None) -> Simulator:
    """Construct the simulator for *name* (default: the reference)."""
    key = DEFAULT_ENGINE if name is None else validate_engine_name(name)
    return ENGINES[key][0]()
