"""Core discrete-event simulator.

Time is a float in microseconds.  Events are callbacks scheduled at an
absolute simulated time; ties are broken by insertion order so runs are
fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback. Returned by :meth:`Simulator.schedule`.

    Events are single-shot.  Cancelling an event before it fires is
    O(1); the heap entry is lazily discarded when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else (
            "fired" if self.fired else "pending")
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.3f} {name} {state}>"


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5.0, fired.append, "a")
        >>> _ = sim.schedule(1.0, fired.append, "b")
        >>> sim.run()
        >>> fired
        ['b', 'a']
        >>> sim.now
        5.0
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events in the queue, including cancelled ones."""
        return len(self._heap)

    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule *callback(*args)* to fire ``delay`` us from now.

        Raises:
            SimulationError: if *delay* is negative or not finite.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        event = Event(self._now + delay, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule *callback* at absolute simulated time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event. Return False if queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now - 1e-9:
                raise SimulationError(
                    f"event at t={event.time} is behind clock t={self._now}"
                )
            self._now = max(self._now, event.time)
            event.fired = True
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or *max_events* fire).

        Returns:
            The number of events fired by this call.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired

    def run_until(self, time: float) -> int:
        """Run all events scheduled strictly before or at ``time``.

        Advances the clock to exactly ``time`` even if the queue drains
        earlier.  Returns the number of events fired.
        """
        if time < self._now:
            raise SimulationError(
                f"run_until target {time} is before current time {self._now}"
            )
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > time:
                break
            self.step()
            fired += 1
        self._now = time
        return fired

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        self._heap.clear()
