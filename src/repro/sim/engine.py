"""Core discrete-event simulator.

Time is a float in microseconds.  Events are callbacks scheduled at an
absolute simulated time; ties are broken by insertion order so runs are
fully deterministic for a given seed.

The heap holds two kinds of entries, both plain tuples so ordering is
resolved by C-level tuple comparison instead of a Python ``__lt__``:

* ``(time, seq, callback, args)`` -- the fire-and-forget fast path
  (:meth:`Simulator.post` / :meth:`Simulator.post_at` /
  :meth:`Simulator.post_at_batch`).  No handle object is allocated.
* ``(time, seq, event)`` -- the cancellable path
  (:meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`), which
  returns an :class:`Event` handle supporting ``cancel()``.

Sequence numbers are unique, so tuple comparison never reaches the
third element and the two entry shapes can share one heap.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

#: Heap size below which cancelled entries are never compacted (the
#: rebuild would cost more than lazily discarding them on pop).
_COMPACT_MIN_HEAP = 64


class Event:
    """A scheduled callback handle. Returned by :meth:`Simulator.schedule`.

    Events are single-shot.  Cancelling an event before it fires is
    O(1); the heap entry is lazily discarded when popped (or dropped
    in bulk when cancelled entries dominate the heap).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired",
                 "_sim")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple,
                 sim: "Simulator") -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            # _sim is None once the event left the heap via clear();
            # fired covers normal pops.  Either way there is no heap
            # entry left to account for.
            if not self.fired and self._sim is not None:
                self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else (
            "fired" if self.fired else "pending")
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.3f} {name} {state}>"


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5.0, fired.append, "a")
        >>> _ = sim.schedule(1.0, fired.append, "b")
        >>> sim.run()
        2
        >>> fired
        ['b', 'a']
        >>> sim.now
        5.0
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._events_processed = 0
        #: cancelled Event entries still sitting in the heap.
        self._cancelled_in_heap = 0
        #: lazy-compaction passes performed (observability counter).
        self.compactions = 0
        #: the run's :class:`~repro.obs.core.Observability` context,
        #: or None (the default -- components cache this once at
        #: construction, so a disabled run pays no per-event cost).
        self.obs: Optional[Any] = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of entries in the queue, including cancelled ones."""
        return len(self._heap)

    @property
    def live_pending_events(self) -> int:
        """Number of queued events that will actually fire.

        Unlike :attr:`pending_events` this excludes cancelled entries
        awaiting lazy removal, so it is the right drain check: a run
        has ended cleanly when no *live* work remains.
        """
        return len(self._heap) - self._cancelled_in_heap

    # ------------------------------------------------------------------
    def post(self, delay: float, callback: Callable[..., Any],
             *args: Any) -> None:
        """Fire-and-forget: schedule *callback(*args)* ``delay`` us out.

        The fast path: no :class:`Event` handle is allocated, so the
        entry cannot be cancelled.  Use :meth:`schedule` when the
        caller needs ``cancel()``.

        Raises:
            SimulationError: if *delay* is negative or not finite.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        heappush(self._heap,
                 (self._now + delay, next(self._seq), callback, args))

    def post_at(self, time: float, callback: Callable[..., Any],
                *args: Any) -> None:
        """Fire-and-forget at absolute simulated time ``time``."""
        # The fire time is now + (time - now) -- the exact arithmetic
        # of schedule_at() -- so absolute-time callers see bit-identical
        # timestamps on either path.  Inlined from post(): this runs
        # several times per request.
        now = self._now
        delay = time - now
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        heappush(self._heap, (now + delay, next(self._seq), callback, args))

    def post_at_batch(self, items: Iterable[
            Tuple[float, Callable[..., Any], tuple]]) -> int:
        """Bulk fire-and-forget scheduling for event trains.

        Args:
            items: iterable of ``(time, callback, args)`` with *time*
                absolute; insertion order breaks same-time ties.

        Returns:
            The number of entries scheduled.

        Raises:
            SimulationError: if any time is before the current clock
                (no entries are scheduled in that case).

        One heapify over the extended heap replaces per-entry sift-up,
        which is the win for interarrival trains scheduled up-front.
        """
        now = self._now
        seq = self._seq
        entries = [(now + (time - now), next(seq), callback, args)
                   for time, callback, args in items]
        for entry in entries:
            if not (entry[0] >= now):  # also rejects NaN
                raise SimulationError(
                    f"cannot schedule in the past: {entry[0]!r}")
        self._heap.extend(entries)
        heapify(self._heap)
        return len(entries)

    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule *callback(*args)* ``delay`` us from now, cancellable.

        Raises:
            SimulationError: if *delay* is negative or not finite.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        event = Event(self._now + delay, next(self._seq), callback, args,
                      self)
        heappush(self._heap, (event.time, event.seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule *callback* at absolute simulated time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Account one newly-cancelled in-heap event; compact lazily."""
        self._cancelled_in_heap += 1
        heap = self._heap
        if (len(heap) >= _COMPACT_MIN_HEAP
                and self._cancelled_in_heap * 2 > len(heap)):
            self._heap = [entry for entry in heap
                          if len(entry) == 4 or not entry[2].cancelled]
            heapify(self._heap)
            self._cancelled_in_heap = 0
            self.compactions += 1

    def _pop_next(self) -> Optional[Tuple[float, Callable[..., Any], tuple]]:
        """Pop the next live entry as ``(time, callback, args)``."""
        heap = self._heap
        while heap:
            entry = heappop(heap)
            if len(entry) == 4:
                return (entry[0], entry[2], entry[3])
            event = entry[2]
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            event.fired = True
            return (event.time, event.callback, event.args)
        return None

    def step(self) -> bool:
        """Fire the next pending event. Return False if queue is empty."""
        popped = self._pop_next()
        if popped is None:
            return False
        time, callback, args = popped
        if time < self._now - 1e-9:
            raise SimulationError(
                f"event at t={time} is behind clock t={self._now}"
            )
        if time > self._now:
            self._now = time
        self._events_processed += 1
        callback(*args)
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or *max_events* fire).

        Returns:
            The number of events fired by this call.
        """
        if max_events is not None:
            fired = 0
            while fired < max_events and self.step():
                fired += 1
            return fired

        # Hot loop: pop/fire inline instead of bouncing through
        # step(), with heap, clock and counters in locals.  Callbacks
        # may schedule new work, so re-read nothing but the list
        # object itself (schedule/post mutate it in place; only
        # _note_cancelled rebinds it, hence the refresh at the top).
        fired = 0
        now = self._now
        while True:
            heap = self._heap
            if not heap:
                break
            entry = heappop(heap)
            if len(entry) == 4:
                time, _, callback, args = entry
            else:
                event = entry[2]
                if event.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                event.fired = True
                time = entry[0]
                callback = event.callback
                args = event.args
            if time > now:
                now = time
                self._now = time
            elif time < now - 1e-9:
                raise SimulationError(
                    f"event at t={time} is behind clock t={now}"
                )
            fired += 1
            self._events_processed += 1
            callback(*args)
            now = self._now
        return fired

    def run_until(self, time: float) -> int:
        """Run all events scheduled strictly before or at ``time``.

        Advances the clock to exactly ``time`` even if the queue drains
        earlier.  Returns the number of events fired.
        """
        if time < self._now:
            raise SimulationError(
                f"run_until target {time} is before current time {self._now}"
            )
        fired = 0
        while True:
            heap = self._heap
            if not heap:
                break
            head = heap[0]
            if len(head) == 3 and head[2].cancelled:
                heappop(heap)
                self._cancelled_in_heap -= 1
                continue
            if head[0] > time:
                break
            self.step()
            fired += 1
        self._now = time
        return fired

    def clear(self) -> None:
        """Drop all pending events (the clock is left where it is)."""
        # Detach surviving Event handles so a later cancel() cannot
        # decrement accounting for entries that no longer exist.
        for entry in self._heap:
            if len(entry) == 3:
                entry[2]._sim = None
        self._heap.clear()
        self._cancelled_in_heap = 0
