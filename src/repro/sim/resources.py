"""Queueing primitives built on the event engine.

:class:`FifoQueue` is a plain bounded/unbounded FIFO with waiting-time
accounting.  :class:`ServerPool` models a station of *n* servers with a
shared FIFO queue (an M/G/n station when fed Poisson arrivals), which
is the substrate under every service model in :mod:`repro.server`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class FifoQueue:
    """A FIFO of opaque items with enqueue-time tracking.

    Attributes:
        capacity: maximum occupancy, or ``None`` for unbounded.
        dropped: number of items rejected because the queue was full.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 0:
            raise SimulationError(f"capacity must be >= 0, got {capacity}")
        self._sim = sim
        self.capacity = capacity
        self._items: Deque[tuple] = deque()
        self.dropped = 0
        self.total_enqueued = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item: Any) -> bool:
        """Enqueue *item*; return False (and count a drop) if full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append((self._sim.now, item))
        self.total_enqueued += 1
        return True

    def pop(self) -> tuple:
        """Dequeue the oldest item.

        Returns:
            ``(waited_us, item)`` where *waited_us* is time spent queued.

        Raises:
            SimulationError: if the queue is empty.
        """
        if not self._items:
            raise SimulationError("pop from empty FifoQueue")
        enqueued_at, item = self._items.popleft()
        return (self._sim.now - enqueued_at, item)

    def peek_wait_us(self) -> float:
        """Waiting time, so far, of the head item (0 if empty)."""
        if not self._items:
            return 0.0
        return self._sim.now - self._items[0][0]


class ServerPool:
    """*n* identical servers draining a shared FIFO queue.

    Jobs are submitted with a per-job service-time callback; when a
    server finishes a job the pool invokes the job's completion
    callback and immediately starts the next queued job.  The pool
    keeps busy-time accounting so utilization can be verified against
    Little's law in tests.
    """

    def __init__(self, sim: Simulator, num_servers: int,
                 queue_capacity: Optional[int] = None):
        if num_servers <= 0:
            raise SimulationError(
                f"num_servers must be positive, got {num_servers}"
            )
        self._sim = sim
        self.num_servers = int(num_servers)
        self.queue = FifoQueue(sim, capacity=queue_capacity)
        self._idle_servers: List[int] = list(range(self.num_servers))
        #: time at which each server last became idle (for idle-period
        #: dependent effects such as server-side C-states).
        self.idle_since: List[float] = [0.0] * self.num_servers
        self.busy_time_us = 0.0
        self.jobs_completed = 0
        self._started_at = sim.now
        #: peak queue occupancy observed at submit (tracked only when
        #: the run carries an Observability context -- one None test
        #: per submit otherwise).
        self.peak_queue_depth = 0
        self._obs = getattr(sim, "obs", None)

    # ------------------------------------------------------------------
    @property
    def busy_servers(self) -> int:
        """Number of servers currently serving a job."""
        return self.num_servers - len(self._idle_servers)

    def utilization(self) -> float:
        """Fraction of total server-time spent busy since creation."""
        elapsed = self._sim.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return self.busy_time_us / (elapsed * self.num_servers)

    # ------------------------------------------------------------------
    def submit(self, job: Any,
               service_time_fn: Callable[[Any, int, float], float],
               done_fn: Callable[..., None], *done_ctx: Any) -> bool:
        """Submit *job* to the pool.

        Args:
            job: opaque job object.
            service_time_fn: ``(job, server_index, idle_gap_us) ->
                service_us``; called when a server actually picks the
                job up, so it can account for how long that server had
                been idle (server C-state wake-ups).
            done_fn: ``(job, queue_wait_us, *done_ctx)`` called at
                completion.  Context travels as data so callers can
                pass stable bound methods instead of per-job closures.

        Returns:
            False if the job was dropped due to a full queue.
        """
        entry = (job, service_time_fn, done_fn, done_ctx)
        if self._idle_servers:
            # Fast path: a server is free; start immediately.
            self.queue.push(entry)
            self._dispatch()
            return True
        accepted = self.queue.push(entry)
        if self._obs is not None:
            depth = len(self.queue)
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
        return accepted

    def _dispatch(self) -> None:
        while self._idle_servers and len(self.queue):
            server = self._idle_servers.pop()
            waited, (job, service_time_fn, done_fn, done_ctx) = (
                self.queue.pop())
            idle_gap = self._sim.now - self.idle_since[server]
            service_us = service_time_fn(job, server, idle_gap)
            if service_us < 0:
                raise SimulationError(
                    f"negative service time {service_us} for job {job!r}"
                )
            self.busy_time_us += service_us
            self._sim.post(
                service_us, self._finish, server, job, waited,
                done_fn, done_ctx)

    def _finish(self, server: int, job: Any, waited: float,
                done_fn: Callable[..., None],
                done_ctx: tuple = ()) -> None:
        self.idle_since[server] = self._sim.now
        self._idle_servers.append(server)
        self.jobs_completed += 1
        done_fn(job, waited, *done_ctx)
        self._dispatch()
