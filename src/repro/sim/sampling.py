"""Draw-ahead batched sampling over numpy generators.

Every stochastic component of the simulator draws scalar values from a
named :class:`~repro.sim.random.RandomStreams` generator.  A scalar
``Generator.exponential()`` call costs ~1 us of Python/numpy dispatch;
invoked 5-10 times per request it dominates the hot path once the
event loop itself is cheap.  :class:`BatchedStream` removes that cost
by fronting a generator with preallocated block draws served from a
cursor.

**Bit-identity.**  numpy ``Generator`` distributions consume the
underlying bit stream through three primitive samplers -- the uniform
double, the ziggurat standard normal, and the ziggurat standard
exponential -- and a ``size=n`` block draw produces exactly the same
value sequence as ``n`` scalar calls.  Derived distributions are pure
float arithmetic on one primitive draw and can be replayed exactly in
Python (IEEE-754 ops are deterministic, ``math.exp`` and numpy's C
``exp`` resolve to the same libm symbol in-process):

* ``exponential(m)``       == ``m * standard_exponential()``
* ``normal(loc, s)``       == ``loc + s * standard_normal()``
* ``lognormal(mu, s)``     == ``exp(mu + s * standard_normal())``
* ``uniform(lo, hi)``      == ``lo + (hi - lo) * random()``
* ``pareto(a)``            == ``expm1(standard_exponential() / a)``

So a block of one *primitive* serves any mix of scale/shape parameters
bit-identically -- as long as consecutive draws keep using the same
primitive.  A draw of a *different* primitive consumes different raw
bits, so a stream that interleaves primitives cannot be read ahead.

:class:`BatchedStream` therefore promotes a primitive to block mode
only after observing a long same-primitive run (``promote_after``), and
if a foreign draw does interrupt an active block it *reconciles*: the
bit generator state is rewound to the block start and re-advanced past
exactly the values already served, leaving the stream where scalar
code would have left it (then promotion backs off so a genuinely mixed
stream settles into plain scalar serving, paying only a bound-method
forward per draw).  The result is safe to wire everywhere: homogeneous
streams (arrival trains, network latency, think times) reach full
block speed, mixed streams (a station's service + SMT + C-state draws)
keep their exact scalar sequence.

``BatchedStream`` mirrors the ``Generator`` method names it serves, so
call sites accept either a raw generator or a batched stream.
"""

from __future__ import annotations

from math import exp, expm1
from typing import Any, Optional

import numpy as np

#: Default block size for promoted (draw-ahead) primitives.
DEFAULT_BLOCK_SIZE = 8192
#: Same-primitive run length after which draw-ahead engages.
DEFAULT_PROMOTE_AFTER = 64
#: Promotion threshold beyond which a stream never promotes again
#: (reached after a few reconciles on a genuinely mixed stream).
_NEVER_PROMOTE = 1 << 20

#: Primitive kinds (indices into the per-kind dispatch tuples).
_UNIFORM, _NORMAL, _EXPONENTIAL = 0, 1, 2
_NO_KIND = -1


class BatchedStream:
    """A draw-ahead facade over one ``numpy.random.Generator``.

    Serves exactly the value sequence the wrapped generator would
    produce under scalar calls (see module docstring), while pulling
    values in blocks whenever the consumption pattern allows.

    Args:
        generator: the generator to front.  The stream owns the
            generator's bit-stream position; drawing from the raw
            generator while a block is active desynchronizes the two
            (use :meth:`flush` first, or route everything through the
            stream).
        block_size: values per preallocated block draw.
        promote_after: consecutive same-primitive draws before block
            mode engages (1 engages it from the second draw of a run;
            useful in tests).
    """

    __slots__ = (
        "_gen", "_bitgen", "block_size", "promote_after", "_threshold",
        "_kind", "_run", "_buf", "_buflen", "_cursor", "_saved_state",
        "_scalar_fns", "_block_fns",
        "batched_served", "scalar_served", "blocks_drawn", "reconciles",
    )

    def __init__(self, generator: np.random.Generator,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 promote_after: int = DEFAULT_PROMOTE_AFTER) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if promote_after < 1:
            raise ValueError(
                f"promote_after must be >= 1, got {promote_after}")
        self._gen = generator
        self._bitgen = generator.bit_generator
        self.block_size = int(block_size)
        self.promote_after = int(promote_after)
        self._threshold = int(promote_after)
        self._kind = _NO_KIND
        self._run = 0
        self._buf: Optional[list] = None
        self._buflen = 0
        self._cursor = 0
        self._saved_state: Any = None
        self._scalar_fns = (generator.random, generator.standard_normal,
                            generator.standard_exponential)
        self._block_fns = self._scalar_fns  # same callables, size arg
        #: Telemetry: draws served from blocks / scalar forwards /
        #: blocks drawn / reconcile (rewind) events.
        self.batched_served = 0
        self.scalar_served = 0
        self.blocks_drawn = 0
        self.reconciles = 0

    # ------------------------------------------------------ introspection
    @property
    def generator(self) -> np.random.Generator:
        """The wrapped generator (position only valid after flush)."""
        return self._gen

    @property
    def draws_remaining(self) -> int:
        """Values left in the active block (0 when serving scalar)."""
        return self._buflen - self._cursor if self._buf is not None else 0

    # ------------------------------------------------------- block plumbing
    def _refill(self, kind: int) -> float:
        """Draw a fresh block of *kind* and serve its first value."""
        self._saved_state = self._bitgen.state
        block: Any = self._block_fns[kind](self.block_size)
        buf = block.tolist()
        self._buf = buf
        self._buflen = self.block_size
        self._cursor = 1
        self._kind = kind
        self.blocks_drawn += 1
        self.batched_served += 1
        return buf[0]

    def _reconcile(self) -> None:
        """Rewind past the unserved tail of the active block.

        Restores the bit-generator state captured at block start and
        re-advances it by exactly the served prefix, so the generator
        sits where scalar consumption would have left it.  Promotion
        backs off so a mixed stream stops trying to read ahead.
        """
        served = self._cursor
        self._bitgen.state = self._saved_state
        if served:
            self._block_fns[self._kind](served)
        self._buf = None
        self._cursor = 0
        self.reconciles += 1
        if self._threshold < _NEVER_PROMOTE:
            self._threshold = min(self._threshold * 4, _NEVER_PROMOTE)

    def flush(self) -> None:
        """Return the generator to the exact scalar-sequence position.

        Call before handing ``self.generator`` to code that draws from
        it directly, or before a whole-vector pull.  No-op when no
        block is active.
        """
        if self._buf is not None:
            self._reconcile()
        self._kind = _NO_KIND
        self._run = 0

    def refill(self, kind: str = "exponential") -> int:
        """Force a block of *kind* to be drawn ahead now.

        Mostly useful to pre-charge a stream before a latency-critical
        stretch.  Returns the number of draws now available.
        """
        kinds = {"uniform": _UNIFORM, "normal": _NORMAL,
                 "exponential": _EXPONENTIAL}
        try:
            code = kinds[kind]
        except KeyError:
            raise ValueError(
                f"unknown kind {kind!r}; expected one of {sorted(kinds)}"
            ) from None
        if self._buf is not None and self._kind == code:
            return self.draws_remaining
        self.flush()
        value = self._refill(code)
        # Put the first value back: refill() must not consume a draw.
        self._cursor = 0
        self.batched_served -= 1
        del value
        return self._buflen

    # ------------------------------------------------------------ primitives
    # The three primitive samplers share one shape: serve from the
    # active block when this primitive owns it, otherwise fall back to
    # a scalar forward, promoting after a long same-primitive run.
    def random(self, size=None):
        """Uniform double in [0, 1) -- next_double of the bit stream."""
        if size is not None:
            self.flush()
            return self._gen.random(size)
        if self._kind == _UNIFORM:
            if self._buf is not None:
                i = self._cursor
                if i < self._buflen:
                    self._cursor = i + 1
                    self.batched_served += 1
                    return self._buf[i]
                return self._refill(_UNIFORM)
            run = self._run + 1
            if run >= self._threshold:
                return self._refill(_UNIFORM)
            self._run = run
        else:
            self._rekind(_UNIFORM)
        self.scalar_served += 1
        return float(self._scalar_fns[_UNIFORM]())

    def standard_normal(self, size=None):
        """Ziggurat standard normal draw."""
        if size is not None:
            self.flush()
            return self._gen.standard_normal(size)
        if self._kind == _NORMAL:
            if self._buf is not None:
                i = self._cursor
                if i < self._buflen:
                    self._cursor = i + 1
                    self.batched_served += 1
                    return self._buf[i]
                return self._refill(_NORMAL)
            run = self._run + 1
            if run >= self._threshold:
                return self._refill(_NORMAL)
            self._run = run
        else:
            self._rekind(_NORMAL)
        self.scalar_served += 1
        return float(self._scalar_fns[_NORMAL]())

    def standard_exponential(self, size=None):
        """Ziggurat standard exponential draw."""
        if size is not None:
            self.flush()
            return self._gen.standard_exponential(size)
        if self._kind == _EXPONENTIAL:
            if self._buf is not None:
                i = self._cursor
                if i < self._buflen:
                    self._cursor = i + 1
                    self.batched_served += 1
                    return self._buf[i]
                return self._refill(_EXPONENTIAL)
            run = self._run + 1
            if run >= self._threshold:
                return self._refill(_EXPONENTIAL)
            self._run = run
        else:
            self._rekind(_EXPONENTIAL)
        self.scalar_served += 1
        return float(self._scalar_fns[_EXPONENTIAL]())

    def _rekind(self, kind: int) -> None:
        """Account a primitive switch (reconciling any active block)."""
        if self._buf is not None:
            self._reconcile()
        self._kind = kind
        self._run = 1

    # --------------------------------------------------- derived (scalar)
    # The two hottest derived draws (exponential, lognormal) inline the
    # primitive serve instead of bouncing through standard_* -- one
    # Python frame per draw matters at millions of draws per campaign.
    def exponential(self, scale: float = 1.0, size=None):
        """Match ``Generator.exponential``: ``scale * std_exp``."""
        if size is not None:
            self.flush()
            return self._gen.exponential(scale, size)
        if self._kind == _EXPONENTIAL:
            if self._buf is not None:
                i = self._cursor
                if i < self._buflen:
                    self._cursor = i + 1
                    self.batched_served += 1
                    return scale * self._buf[i]
                return scale * self._refill(_EXPONENTIAL)
            run = self._run + 1
            if run >= self._threshold:
                return scale * self._refill(_EXPONENTIAL)
            self._run = run
        else:
            self._rekind(_EXPONENTIAL)
        self.scalar_served += 1
        return scale * float(self._scalar_fns[_EXPONENTIAL]())

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0, size=None):
        """Match ``Generator.lognormal``: ``exp(normal(mean, sigma))``."""
        if size is not None:
            self.flush()
            return self._gen.lognormal(mean, sigma, size)
        if self._kind == _NORMAL:
            if self._buf is not None:
                i = self._cursor
                if i < self._buflen:
                    self._cursor = i + 1
                    self.batched_served += 1
                    return exp(mean + sigma * self._buf[i])
                return exp(mean + sigma * self._refill(_NORMAL))
            run = self._run + 1
            if run >= self._threshold:
                return exp(mean + sigma * self._refill(_NORMAL))
            self._run = run
        else:
            self._rekind(_NORMAL)
        self.scalar_served += 1
        return exp(mean + sigma * float(self._scalar_fns[_NORMAL]()))

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        """Match ``Generator.normal``: ``loc + scale * std_normal``."""
        if size is not None:
            self.flush()
            return self._gen.normal(loc, scale, size)
        return loc + scale * self.standard_normal()

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        """Match ``Generator.uniform``: ``low + (high-low) * u``."""
        if size is not None:
            self.flush()
            return self._gen.uniform(low, high, size)
        return low + (high - low) * self.random()

    def pareto(self, a: float, size=None):
        """Match ``Generator.pareto``: ``expm1(std_exp / a)``."""
        if size is not None:
            self.flush()
            return self._gen.pareto(a, size)
        return expm1(self.standard_exponential() / a)

    # ------------------------------------------------- issue-facing names
    def next_uniform(self) -> float:
        """One uniform [0, 1) draw (alias of :meth:`random`)."""
        return self.random()

    def next_exponential(self, mean_us: float) -> float:
        """One exponential draw with mean *mean_us*."""
        return self.exponential(mean_us)

    def next_lognormal(self, mu: float, sigma: float) -> float:
        """One lognormal draw with log-space parameters (mu, sigma)."""
        return self.lognormal(mu, sigma)

    def next_normal(self, loc: float, scale: float) -> float:
        """One normal draw."""
        return loc + scale * self.standard_normal()

    def next_index(self, n: int) -> int:
        """Uniform integer in ``[0, n)`` from one uniform draw.

        The cluster layer's index draw (load-balancer node picks,
        shard-subset shuffles): block-served like any other uniform,
        with the ``min`` guarding float rounding at large *n*
        (``random() < 1.0`` strictly, but ``u * n`` may round up).
        ``n <= 1`` consumes no draw.
        """
        if n <= 1:
            return 0
        return min(int(self.random() * n), n - 1)

    # ------------------------------------------------------ vector trains
    def exponential_train(self, mean_us: float, size: int) -> np.ndarray:
        """The next *size* exponential(mean) draws as one vector.

        Bit-identical to *size* scalar draws; used to construct whole
        open-loop arrival trains in one numpy call.
        """
        self.flush()
        return self._gen.standard_exponential(size) * mean_us

    def lognormal_train(self, mu: float, sigma: float,
                        size: int) -> np.ndarray:
        """The next *size* lognormal(mu, sigma) draws as one vector."""
        self.flush()
        return self._gen.lognormal(mu, sigma, size)

    # ----------------------------------------------------------- fallback
    def __getattr__(self, name: str):
        """Delegate anything else (integers, choice, ...) to the
        generator, after repositioning it at the exact scalar point."""
        if name.startswith("_"):
            raise AttributeError(name)
        attr = getattr(object.__getattribute__(self, "_gen"), name)
        self.flush()
        return attr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<BatchedStream block={self.block_size} "
                f"batched={self.batched_served} scalar={self.scalar_served} "
                f"reconciles={self.reconciles}>")


def as_stream(rng, block_size: int = DEFAULT_BLOCK_SIZE,
              promote_after: int = DEFAULT_PROMOTE_AFTER):
    """Wrap *rng* in a :class:`BatchedStream` unless it already is one.

    ``None`` passes through (deterministic call sites keep their
    no-randomness contract).
    """
    if rng is None or isinstance(rng, BatchedStream):
        return rng
    return BatchedStream(rng, block_size=block_size,
                         promote_after=promote_after)
