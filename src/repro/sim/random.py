"""Deterministic per-component random streams.

Experiments in the paper take **one sample per run and reset the
environment between runs** so samples are iid.  To reproduce that we
give every run a root seed and derive an independent, named child
stream for each stochastic component (interarrival process, service
times, network, client overheads ...).  Two runs with the same root
seed are bit-identical; changing one component's draws does not perturb
any other component.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

import numpy as np

from repro.sim.sampling import BatchedStream

#: The stream namespace active in this process (see
#: :func:`stream_namespace`).  Empty outside a namespace block, which
#: is the historical behavior: stream identity is (seed, name) alone.
_ACTIVE_NAMESPACE = ""


@contextmanager
def stream_namespace(prefix: str) -> Iterator[None]:
    """Prefix every stream name of registries built inside the block.

    The sharded runner (:mod:`repro.parallel`) builds each shard's
    full testbed inside ``stream_namespace("pshard3/")`` so every
    component of the shard draws from streams keyed by
    ``(seed, "pshard3/" + name)`` -- independent of every other
    shard's streams without touching any workload builder.  Nesting
    concatenates prefixes.  The namespace is captured by
    :class:`RandomStreams` at construction, so a registry keeps its
    namespace even when its streams are first requested outside the
    block.
    """
    global _ACTIVE_NAMESPACE
    previous = _ACTIVE_NAMESPACE
    _ACTIVE_NAMESPACE = previous + str(prefix)
    try:
        yield
    finally:
        _ACTIVE_NAMESPACE = previous


class RandomStreams:
    """A registry of named, independently-seeded numpy generators.

    Example:
        >>> streams = RandomStreams(seed=7)
        >>> a = streams.get("service").random()
        >>> b = RandomStreams(seed=7).get("service").random()
        >>> a == b
        True
    """

    def __init__(self, seed: int) -> None:
        self._seed_seq = np.random.SeedSequence(int(seed))
        self._root_seed = int(seed)
        self._namespace = _ACTIVE_NAMESPACE
        self._streams: Dict[str, np.random.Generator] = {}
        self._batched: Dict[str, BatchedStream] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this registry was created with."""
        return self._root_seed

    @property
    def namespace(self) -> str:
        """The stream-name prefix captured at construction ("" when
        built outside a :func:`stream_namespace` block)."""
        return self._namespace

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for *name*.

        The stream seed is derived from the root seed and a stable hash
        of the (namespace-prefixed) name, so stream identity depends
        only on (seed, namespace + name).
        """
        stream = self._streams.get(name)
        if stream is None:
            child = np.random.SeedSequence(
                entropy=self._seed_seq.entropy,
                spawn_key=(_stable_name_key(self._namespace + name),),
            )
            stream = np.random.default_rng(child)
            self._streams[name] = stream
        return stream

    def stream(self, name: str) -> BatchedStream:
        """Return (creating if needed) the batched facade for *name*.

        The facade fronts the same generator :meth:`get` returns and
        serves the identical value sequence (see
        :mod:`repro.sim.sampling`), pulling block draws when the
        stream's consumption allows.  Hot-path components should take
        this; cold call sites may keep the raw generator.  Mixing both
        for one name is safe only while the facade has no block in
        flight (``stream(name).flush()`` re-synchronizes).
        """
        batched = self._batched.get(name)
        if batched is None:
            batched = BatchedStream(self.get(name))
            self._batched[name] = batched
        return batched

    def batched_stats(self) -> "Dict[str, Dict[str, int]]":
        """Per-facade draw-ahead counters, keyed by stream name.

        The supported way to observe how much of a run's randomness
        was served from blocks vs scalar forwards (benchmarks, perf
        triage).  Streams never requested via :meth:`stream` do not
        appear.
        """
        return {
            name: {
                "batched_served": stream.batched_served,
                "scalar_served": stream.scalar_served,
                "blocks_drawn": stream.blocks_drawn,
                "reconciles": stream.reconciles,
            }
            for name, stream in sorted(self._batched.items())
        }

    def names(self) -> tuple:
        """Names of the streams created so far (diagnostic)."""
        return tuple(sorted(self._streams))


def _stable_name_key(name: str) -> int:
    """A deterministic 63-bit key for a stream name.

    ``hash(str)`` is salted per process, so we use FNV-1a instead.
    """
    acc = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF
