"""Discrete-event simulation engine.

The engine is deliberately tiny: a monotonic clock, a binary-heap event
queue, cancellable events, and deterministic seeded random streams.
Everything else in the library (hardware model, servers, workload
generators) is built as callbacks scheduled on a :class:`Simulator`.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.kernel import (
    DEFAULT_ENGINE,
    KernelSimulator,
    engine_names,
    make_simulator,
    validate_engine_name,
)
from repro.sim.random import RandomStreams
from repro.sim.resources import FifoQueue, ServerPool

__all__ = [
    "Event",
    "Simulator",
    "RandomStreams",
    "FifoQueue",
    "ServerPool",
    "DEFAULT_ENGINE",
    "KernelSimulator",
    "engine_names",
    "make_simulator",
    "validate_engine_name",
]
