"""Hardware configuration knobs and the paper's Table II presets."""

from repro.config.knobs import (
    ALL_CSTATES,
    FrequencyDriver,
    FrequencyGovernor,
    HardwareConfig,
    UncorePolicy,
)
from repro.config.presets import (
    HP_CLIENT,
    LP_CLIENT,
    SERVER_BASELINE,
    client_by_name,
    server_with_c1e,
    server_with_smt,
)
from repro.config.validate import config_warnings, validate_config

__all__ = [
    "ALL_CSTATES",
    "FrequencyDriver",
    "FrequencyGovernor",
    "HardwareConfig",
    "UncorePolicy",
    "LP_CLIENT",
    "HP_CLIENT",
    "SERVER_BASELINE",
    "client_by_name",
    "server_with_smt",
    "server_with_c1e",
    "validate_config",
    "config_warnings",
]
