"""Cross-knob validation rules.

Some knob combinations are physically impossible or meaningless on the
modelled machine (e.g. the ``powersave`` governor under ``acpi-cpufreq``
pins the *minimum* frequency, which no experimenter tuning for high
performance would pick; ``idle=poll`` with deep C-states enabled is
contradictory).  :func:`validate_config` raises
:class:`~repro.errors.ConfigurationError` for hard errors and
:func:`config_warnings` returns a list of soft warnings.
"""

from __future__ import annotations

from typing import List

from repro.config.knobs import (
    FrequencyDriver,
    FrequencyGovernor,
    HardwareConfig,
)
from repro.errors import ConfigurationError


def validate_config(config: HardwareConfig) -> HardwareConfig:
    """Validate *config*, returning it unchanged if acceptable.

    Raises:
        ConfigurationError: for contradictory knob combinations.
    """
    if not config.enabled_cstates:
        raise ConfigurationError("at least C0 must be enabled")
    if "C6" in config.enabled_cstates and "C1" not in config.enabled_cstates:
        raise ConfigurationError(
            "C6 cannot be enabled while C1 is disabled: the cpuidle "
            "ladder requires shallower states below deeper ones"
        )
    if ("C1E" in config.enabled_cstates
            and "C1" not in config.enabled_cstates):
        raise ConfigurationError(
            "C1E cannot be enabled while C1 is disabled"
        )
    if (config.frequency_driver is FrequencyDriver.INTEL_PSTATE
            and config.frequency_governor in (
                FrequencyGovernor.ONDEMAND, FrequencyGovernor.SCHEDUTIL)):
        raise ConfigurationError(
            "intel_pstate (active mode) only exposes the powersave and "
            "performance governors"
        )
    return config


def config_warnings(config: HardwareConfig) -> List[str]:
    """Return soft warnings about surprising knob combinations."""
    warnings: List[str] = []
    if (config.frequency_governor is FrequencyGovernor.POWERSAVE
            and config.frequency_driver is FrequencyDriver.ACPI_CPUFREQ):
        warnings.append(
            "acpi-cpufreq + powersave pins the minimum frequency; "
            "measurements will be dominated by the low clock"
        )
    if config.idle_poll and config.tickless:
        warnings.append(
            "idle=poll never idles, so the tickless (nohz) setting "
            "has no observable effect"
        )
    if (config.turbo
            and config.frequency_governor is FrequencyGovernor.POWERSAVE):
        warnings.append(
            "turbo with the powersave governor rarely engages: the "
            "governor keeps utilization-scaled frequencies below the "
            "turbo range most of the time"
        )
    return warnings
