"""The client- and server-side configurations of Table II.

Two client configurations are studied:

* **LP** (low power) -- the system default, i.e. what an experimenter
  who never thinks about the client machine gets: all C-states,
  ``intel_pstate`` + ``powersave``, turbo on, SMT on, dynamic uncore,
  tickless off.
* **HP** (high performance) -- empirically tuned: C-states off
  (``idle=poll``), ``acpi-cpufreq`` + ``performance``, turbo on, SMT
  on, fixed uncore, tickless off.

The server baseline enables only C0/C1, ``acpi-cpufreq`` +
``performance``, turbo off, SMT off, fixed uncore, tickless on.
Server-side variants (SMT on, C1E on) are derived from the baseline.
"""

from __future__ import annotations

from repro.config.knobs import (
    FrequencyDriver,
    FrequencyGovernor,
    HardwareConfig,
    UncorePolicy,
)

#: Low-power (default) client configuration -- Table II column "LP".
LP_CLIENT = HardwareConfig(
    name="LP",
    enabled_cstates=frozenset({"C0", "C1", "C1E", "C6"}),
    frequency_driver=FrequencyDriver.INTEL_PSTATE,
    frequency_governor=FrequencyGovernor.POWERSAVE,
    turbo=True,
    smt=True,
    uncore=UncorePolicy.DYNAMIC,
    tickless=False,
)

#: High-performance (tuned) client configuration -- Table II column "HP".
HP_CLIENT = HardwareConfig(
    name="HP",
    enabled_cstates=frozenset({"C0"}),
    frequency_driver=FrequencyDriver.ACPI_CPUFREQ,
    frequency_governor=FrequencyGovernor.PERFORMANCE,
    turbo=True,
    smt=True,
    uncore=UncorePolicy.FIXED,
    tickless=False,
)

#: Server-side baseline -- Table II column "Baseline".
SERVER_BASELINE = HardwareConfig(
    name="server-baseline",
    enabled_cstates=frozenset({"C0", "C1"}),
    frequency_driver=FrequencyDriver.ACPI_CPUFREQ,
    frequency_governor=FrequencyGovernor.PERFORMANCE,
    turbo=False,
    smt=False,
    uncore=UncorePolicy.FIXED,
    tickless=True,
)


def server_with_smt(enabled: bool) -> HardwareConfig:
    """Server baseline with SMT toggled (the Fig. 2 study)."""
    suffix = "SMTon" if enabled else "SMToff"
    return SERVER_BASELINE.with_smt(enabled).renamed(f"server-{suffix}")


def server_with_c1e(enabled: bool) -> HardwareConfig:
    """Server baseline with C1E toggled (the Fig. 3 study)."""
    if enabled:
        return SERVER_BASELINE.with_cstates(
            {"C0", "C1", "C1E"}).renamed("server-C1Eon")
    return SERVER_BASELINE.renamed("server-C1Eoff")


def client_by_name(name: str) -> HardwareConfig:
    """Look up a client preset by its paper label ("LP" or "HP")."""
    presets = {"LP": LP_CLIENT, "HP": HP_CLIENT}
    try:
        return presets[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown client preset {name!r}; expected one of "
            f"{sorted(presets)}"
        ) from None


def knob_conditions(knob: str) -> "dict[str, HardwareConfig]":
    """The server-condition pair for one knob study, labeled.

    The single source of truth for the Fig. 2/3/4 condition grids:
    the figure studies, the campaign presets and the CLI all derive
    their ``{"SMToff": ..., "SMTon": ...}`` dicts here.

    Raises:
        ExperimentError: on an unknown knob name.
    """
    from repro.errors import ExperimentError

    key = str(knob).lower()
    if key == "smt":
        return {"SMToff": server_with_smt(False),
                "SMTon": server_with_smt(True)}
    if key == "c1e":
        return {"C1Eoff": server_with_c1e(False),
                "C1Eon": server_with_c1e(True)}
    raise ExperimentError(
        f"unknown knob {knob!r}; expected 'smt' or 'c1e'")
