"""Canonical JSON + hardware-config serialization primitives.

The bottom of the serialization stack: everything above it -- the
:mod:`repro.api` spec layer, campaign specs, the result store --
hashes and round-trips its data through these helpers.

Canonical form: sorted keys, no whitespace, enums as their ``.value``
strings, C-states as a sorted list.  Two objects with equal canonical
JSON are the same condition, regardless of which process or session
built them.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Union

from repro.config.knobs import (
    FrequencyDriver,
    FrequencyGovernor,
    HardwareConfig,
    UncorePolicy,
)
from repro.errors import ExperimentError


def canonical_json(data: Any) -> str:
    """The canonical (sorted, compact) JSON encoding of *data*."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def content_hash(data: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of *data*."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def hardware_config_to_dict(config: HardwareConfig) -> Dict[str, Any]:
    """Flatten a :class:`HardwareConfig` into plain JSON types."""
    return {
        "name": config.name,
        "cstates": sorted(config.enabled_cstates),
        "frequency_driver": config.frequency_driver.value,
        "frequency_governor": config.frequency_governor.value,
        "turbo": config.turbo,
        "smt": config.smt,
        "uncore": config.uncore.value,
        "tickless": config.tickless,
    }


def hardware_config_from_dict(
        data: Union[str, Dict[str, Any]]) -> HardwareConfig:
    """Rebuild a :class:`HardwareConfig` from its dict form.

    A plain string is treated as a preset name: ``"LP"``/``"HP"`` (the
    Table II clients) or ``"baseline"``/``"server-baseline"``.
    """
    if isinstance(data, str):
        return _preset_by_name(data)
    try:
        return HardwareConfig(
            name=str(data["name"]),
            enabled_cstates=frozenset(data["cstates"]),
            frequency_driver=FrequencyDriver(data["frequency_driver"]),
            frequency_governor=FrequencyGovernor(
                data["frequency_governor"]),
            turbo=bool(data["turbo"]),
            smt=bool(data["smt"]),
            uncore=UncorePolicy(data["uncore"]),
            tickless=bool(data["tickless"]),
        )
    except (KeyError, ValueError) as exc:
        raise ExperimentError(
            f"invalid hardware config dict: {exc}") from exc


def _preset_by_name(name: str) -> HardwareConfig:
    from repro.config.presets import SERVER_BASELINE, client_by_name

    if name.lower() in ("baseline", "server-baseline"):
        return SERVER_BASELINE
    try:
        return client_by_name(name)
    except ValueError as exc:
        raise ExperimentError(str(exc)) from None
