"""Hardware configuration knobs (Section IV-C of the paper).

The paper tunes seven knobs: C-states, frequency driver, frequency
governor, turbo mode, SMT, uncore frequency and the tickless kernel.
:class:`HardwareConfig` bundles one setting per knob and is consumed by
both the simulator (:mod:`repro.hardware`) and the real-host tooling
(:mod:`repro.host`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Tuple

from repro.errors import ConfigurationError

#: Canonical C-state names on the simulated Skylake machine.
ALL_CSTATES: Tuple[str, ...] = ("C0", "C1", "C1E", "C6")


class FrequencyDriver(enum.Enum):
    """Linux CPUFreq driver choices (paper Section IV-C)."""

    INTEL_PSTATE = "intel_pstate"
    ACPI_CPUFREQ = "acpi_cpufreq"


class FrequencyGovernor(enum.Enum):
    """CPUFreq governor choices."""

    POWERSAVE = "powersave"
    PERFORMANCE = "performance"
    ONDEMAND = "ondemand"
    SCHEDUTIL = "schedutil"


class UncorePolicy(enum.Enum):
    """Uncore frequency policy (MSR 0x620)."""

    DYNAMIC = "dynamic"
    FIXED = "fixed"


def _normalize_cstates(enabled) -> FrozenSet[str]:
    names = frozenset(str(name) for name in enabled)
    unknown = names - set(ALL_CSTATES)
    if unknown:
        raise ConfigurationError(
            f"unknown C-states {sorted(unknown)}; known: {list(ALL_CSTATES)}"
        )
    if "C0" not in names:
        raise ConfigurationError("C0 can never be disabled")
    return names


@dataclass(frozen=True)
class HardwareConfig:
    """One complete setting of the seven hardware knobs.

    ``enabled_cstates`` of exactly ``{"C0"}`` corresponds to the
    ``idle=poll`` kernel flag: the idle loop spins and never sleeps.

    Attributes:
        name: human-readable label, e.g. ``"LP"`` or ``"HP"``.
        enabled_cstates: which C-states the cpuidle governor may use.
        frequency_driver: which CPUFreq driver is loaded.
        frequency_governor: which CPUFreq governor decides frequency.
        turbo: whether Turbo Boost is enabled (MSR 0x1A0 bit 38 clear).
        smt: whether simultaneous multithreading is enabled.
        uncore: uncore-frequency policy (MSR 0x620).
        tickless: whether the kernel omits scheduling-clock ticks when
            idle (``nohz``).
    """

    name: str
    enabled_cstates: FrozenSet[str]
    frequency_driver: FrequencyDriver
    frequency_governor: FrequencyGovernor
    turbo: bool
    smt: bool
    uncore: UncorePolicy
    tickless: bool

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "enabled_cstates", _normalize_cstates(self.enabled_cstates))

    # ------------------------------------------------------------------
    @property
    def idle_poll(self) -> bool:
        """True when all sleep states are disabled (``idle=poll``)."""
        return self.enabled_cstates == frozenset({"C0"})

    def deepest_cstate(self) -> str:
        """Name of the deepest enabled C-state."""
        for name in reversed(ALL_CSTATES):
            if name in self.enabled_cstates:
                return name
        raise ConfigurationError("no C-state enabled")  # pragma: no cover

    def with_cstates(self, enabled) -> "HardwareConfig":
        """Copy of this config with a different enabled C-state set."""
        return replace(self, enabled_cstates=_normalize_cstates(enabled))

    def with_smt(self, smt: bool) -> "HardwareConfig":
        """Copy of this config with SMT switched to *smt*."""
        return replace(self, smt=bool(smt))

    def renamed(self, name: str) -> "HardwareConfig":
        """Copy of this config under a different label."""
        return replace(self, name=str(name))

    # ------------------------------------------------------------------
    def knob_settings(self) -> Dict[str, str]:
        """A flat, printable knob -> value mapping (Table II rows)."""
        cstates = ",".join(
            n for n in ALL_CSTATES if n in self.enabled_cstates)
        if self.idle_poll:
            cstates = "off"
        return {
            "C-states": cstates,
            "Frequency Driver": self.frequency_driver.value,
            "Frequency Governor": self.frequency_governor.value,
            "Turbo": "on" if self.turbo else "off",
            "SMT": "on" if self.smt else "off",
            "Uncore Frequency": self.uncore.value,
            "Tickless": "on" if self.tickless else "off",
        }

    def describe(self) -> str:
        """One-line description for logs and figure legends."""
        knobs = ", ".join(f"{k}={v}" for k, v in self.knob_settings().items())
        return f"{self.name}: {knobs}"
