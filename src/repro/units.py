"""Unit conventions and helpers used throughout the library.

All simulated time is expressed in **microseconds** as floats, all
frequencies in **GHz**, and all rates in **requests per second** unless
a name says otherwise.  These helpers exist so call sites read in the
units the paper uses (e.g. ``ms(2)`` for a 2-millisecond budget) rather
than in raw magic numbers.
"""

from __future__ import annotations

#: One microsecond (the base time unit).
US = 1.0

#: Microseconds per millisecond.
MS = 1_000.0

#: Microseconds per second.
SECOND = 1_000_000.0


def us(value: float) -> float:
    """Return *value* microseconds expressed in base time units."""
    return float(value) * US


def ms(value: float) -> float:
    """Return *value* milliseconds expressed in base time units."""
    return float(value) * MS


def seconds(value: float) -> float:
    """Return *value* seconds expressed in base time units."""
    return float(value) * SECOND


def to_ms(value_us: float) -> float:
    """Convert microseconds to milliseconds."""
    return float(value_us) / MS


def to_seconds(value_us: float) -> float:
    """Convert microseconds to seconds."""
    return float(value_us) / SECOND


def qps_to_interarrival_us(qps: float) -> float:
    """Mean inter-arrival time in microseconds for a rate in queries/sec.

    Raises:
        ValueError: if *qps* is not strictly positive.
    """
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps!r}")
    return SECOND / float(qps)


def interarrival_us_to_qps(interarrival_us: float) -> float:
    """Rate in queries/sec for a mean inter-arrival time in microseconds."""
    if interarrival_us <= 0:
        raise ValueError(
            f"interarrival_us must be positive, got {interarrival_us!r}"
        )
    return SECOND / float(interarrival_us)


def ghz(value: float) -> float:
    """Return a frequency in GHz (identity; documents intent)."""
    return float(value)


def work_cycles_us(work_us_at_nominal: float, nominal_ghz: float,
                   current_ghz: float) -> float:
    """Scale a work duration calibrated at nominal frequency to *current_ghz*.

    A piece of CPU-bound work that takes ``work_us_at_nominal``
    microseconds at ``nominal_ghz`` takes proportionally longer at a
    lower frequency and shorter at a higher one.

    Raises:
        ValueError: if either frequency is not strictly positive.
    """
    if nominal_ghz <= 0 or current_ghz <= 0:
        raise ValueError("frequencies must be positive")
    return float(work_us_at_nominal) * (float(nominal_ghz) / float(current_ghz))
