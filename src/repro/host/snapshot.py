"""Capture and restore the tunable state of a host.

Good experimental hygiene (and the paper's iid protocol, which resets
the environment between runs) requires putting the machine back the
way it was found.  :class:`HostSnapshot` records every runtime knob
the tooling can touch; :meth:`HostSnapshot.restore` reverts them.
Boot-time (grub) flags are recorded but can only be reverted for the
next boot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.host.filesystem import Filesystem
from repro.host.grub import GrubConfig
from repro.host.msr import MsrInterface
from repro.host.sysfs import CpuSysfs


@dataclass
class HostSnapshot:
    """Point-in-time record of all tunable host state."""

    enabled_cstates: List[str]
    governor: str
    driver: str
    smt_active: bool
    turbo_enabled: bool
    uncore_limits_mhz: tuple
    grub_cmdline: List[str]
    freq_range_khz: tuple

    def restore(self, fs: Filesystem) -> List[str]:
        """Re-apply this snapshot to the host behind *fs*.

        Returns:
            Human-readable descriptions of the actions performed.
        """
        actions: List[str] = []
        sysfs = CpuSysfs(fs)
        msr = MsrInterface(fs)

        sysfs.set_enabled_cstates(self.enabled_cstates)
        actions.append(
            f"restored C-states: {','.join(self.enabled_cstates)}")

        if self.governor in sysfs.available_governors():
            sysfs.set_governor(self.governor)
            actions.append(f"restored governor: {self.governor}")
        else:
            actions.append(
                f"cannot restore governor {self.governor}: active driver "
                f"{sysfs.scaling_driver()} does not offer it (reboot "
                f"needed to change driver)")

        sysfs.set_smt(self.smt_active)
        actions.append(f"restored SMT: {'on' if self.smt_active else 'off'}")

        msr.set_turbo(self.turbo_enabled)
        actions.append(
            f"restored turbo: {'on' if self.turbo_enabled else 'off'}")

        min_mhz, max_mhz = self.uncore_limits_mhz
        if min_mhz == max_mhz:
            msr.set_uncore_fixed(max_mhz)
        else:
            msr.set_uncore_dynamic(min_mhz, max_mhz)
        actions.append(
            f"restored uncore limits: [{min_mhz}, {max_mhz}] MHz")

        grub = GrubConfig(fs)
        current = grub.cmdline()
        if current != self.grub_cmdline:
            for token in list(current):
                key = token.split("=", 1)[0]
                grub.clear_flag(key)
            for token in self.grub_cmdline:
                if "=" in token:
                    key, value = token.split("=", 1)
                    grub.set_flag(key, value)
                else:
                    grub.set_flag(token)
            actions.append(
                "restored grub cmdline (takes effect after reboot)")
        return actions


def capture_snapshot(fs: Filesystem) -> HostSnapshot:
    """Capture the current tunable state of the host behind *fs*."""
    sysfs = CpuSysfs(fs)
    msr = MsrInterface(fs)
    grub = GrubConfig(fs)
    return HostSnapshot(
        enabled_cstates=sysfs.enabled_cstates(),
        governor=sysfs.scaling_governor(),
        driver=sysfs.scaling_driver(),
        smt_active=sysfs.smt_active(),
        turbo_enabled=msr.turbo_enabled(),
        uncore_limits_mhz=msr.uncore_ratio_limits(),
        grub_cmdline=grub.cmdline(),
        freq_range_khz=sysfs.freq_range_khz(),
    )
