"""High-level host tuning: HardwareConfig -> concrete actions.

:class:`HostTuner` is the user-facing entry point of the host toolkit.
Given a :class:`~repro.config.HardwareConfig` (e.g. the HP preset) it
builds a :class:`TuningPlan` -- the ordered list of sysfs writes, MSR
writes and grub edits needed, each with its shell-equivalent -- and can
then apply the plan, telling the caller whether a reboot is required
for boot-time knobs to take effect.

Example::

    fs = FakeFilesystem(make_skylake_tree())        # or RealFilesystem()
    tuner = HostTuner(fs)
    plan = tuner.plan(HP_CLIENT)
    print(plan.render())                            # review / dry run
    result = tuner.apply(plan)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.config.knobs import (
    ALL_CSTATES,
    FrequencyDriver,
    HardwareConfig,
    UncorePolicy,
)
from repro.config.validate import validate_config
from repro.errors import HostToolingError
from repro.host.filesystem import Filesystem
from repro.host.grub import GrubConfig
from repro.host.msr import MsrInterface
from repro.host.snapshot import HostSnapshot, capture_snapshot
from repro.host.sysfs import CpuSysfs

#: Uncore pin frequency used for the "fixed" policy, in MHz.
FIXED_UNCORE_MHZ = 2400


@dataclass(frozen=True)
class TuningAction:
    """One concrete step of a tuning plan.

    Attributes:
        description: human-readable summary.
        shell_equivalent: command an operator could run by hand.
        runtime: True if effective immediately; False if boot-time.
        execute: the closure performing the action.
    """

    description: str
    shell_equivalent: str
    runtime: bool
    execute: Callable[[], None]


@dataclass
class TuningPlan:
    """An ordered list of actions realizing one HardwareConfig."""

    config: HardwareConfig
    actions: List[TuningAction] = field(default_factory=list)

    @property
    def needs_reboot(self) -> bool:
        """True if any action only takes effect after a reboot."""
        return any(not action.runtime for action in self.actions)

    def render(self) -> str:
        """Multi-line human-readable plan (for review / dry runs)."""
        lines = [f"Tuning plan for configuration {self.config.name!r}:"]
        for index, action in enumerate(self.actions, start=1):
            kind = "runtime" if action.runtime else "boot-time"
            lines.append(f"  {index}. [{kind}] {action.description}")
            lines.append(f"       $ {action.shell_equivalent}")
        if self.needs_reboot:
            lines.append("  NOTE: boot-time actions require update-grub "
                         "and a reboot to take effect.")
        return "\n".join(lines)


@dataclass
class ApplyResult:
    """Outcome of :meth:`HostTuner.apply`."""

    performed: List[str]
    needs_reboot: bool
    snapshot: Optional[HostSnapshot]


class HostTuner:
    """Plan and apply hardware configurations on a (possibly fake) host."""

    def __init__(self, fs: Filesystem) -> None:
        self._fs = fs
        self._sysfs = CpuSysfs(fs)
        self._msr = MsrInterface(fs)
        self._grub = GrubConfig(fs)

    # ------------------------------------------------------------------
    def plan(self, config: HardwareConfig) -> TuningPlan:
        """Build the action plan realizing *config* on this host."""
        config = validate_config(config)
        plan = TuningPlan(config=config)
        sysfs, msr, grub = self._sysfs, self._msr, self._grub

        # --- C-states: runtime disable via cpuidle + boot-time ceiling.
        enabled = sorted(
            config.enabled_cstates,
            key=ALL_CSTATES.index)
        plan.actions.append(TuningAction(
            description=(
                "disable all C-states (idle=poll)" if config.idle_poll
                else f"enable only C-states {','.join(enabled)}"),
            shell_equivalent=(
                "for f in /sys/devices/system/cpu/cpu*/cpuidle/state*/"
                "disable; do echo 1 > $f; done" if config.idle_poll else
                "cpupower idle-set -e/-d per state"),
            runtime=True,
            execute=lambda: sysfs.set_enabled_cstates(
                config.enabled_cstates),
        ))
        deepest = config.deepest_cstate()
        plan.actions.append(TuningAction(
            description=f"grub: C-state ceiling {deepest}",
            shell_equivalent=(
                'sed -i GRUB_CMDLINE_LINUX_DEFAULT /etc/default/grub '
                f'# idle/intel_idle.max_cstate for {deepest}'),
            runtime=False,
            execute=lambda: grub.set_max_cstate(deepest),
        ))

        # --- frequency driver (boot-time) + governor (runtime).
        use_pstate = config.frequency_driver is FrequencyDriver.INTEL_PSTATE
        plan.actions.append(TuningAction(
            description=f"grub: CPUFreq driver "
                        f"{config.frequency_driver.value}",
            shell_equivalent=(
                "grub: remove intel_pstate=disable" if use_pstate
                else "grub: add intel_pstate=disable"),
            runtime=False,
            execute=lambda: grub.set_pstate_driver(use_pstate),
        ))
        governor = config.frequency_governor.value
        plan.actions.append(TuningAction(
            description=f"set governor {governor}",
            shell_equivalent=f"cpupower frequency-set -g {governor}",
            runtime=True,
            execute=lambda: self._set_governor_if_available(governor),
        ))

        # --- turbo (MSR 0x1A0).
        plan.actions.append(TuningAction(
            description=f"turbo {'on' if config.turbo else 'off'} "
                        f"(MSR 0x1a0 bit 38)",
            shell_equivalent=(
                f"wrmsr -a 0x1a0 <value with bit38="
                f"{0 if config.turbo else 1}>"),
            runtime=True,
            execute=lambda: msr.set_turbo(config.turbo),
        ))

        # --- SMT (sysfs global control).
        plan.actions.append(TuningAction(
            description=f"SMT {'on' if config.smt else 'off'}",
            shell_equivalent=(
                f"echo {'on' if config.smt else 'off'} > "
                f"/sys/devices/system/cpu/smt/control"),
            runtime=True,
            execute=lambda: sysfs.set_smt(config.smt),
        ))

        # --- uncore (MSR 0x620).
        if config.uncore is UncorePolicy.FIXED:
            plan.actions.append(TuningAction(
                description=f"pin uncore at {FIXED_UNCORE_MHZ} MHz "
                            f"(MSR 0x620)",
                shell_equivalent="wrmsr -a 0x620 <ratio|ratio<<8>",
                runtime=True,
                execute=lambda: msr.set_uncore_fixed(FIXED_UNCORE_MHZ),
            ))
        else:
            plan.actions.append(TuningAction(
                description="restore dynamic uncore range (MSR 0x620)",
                shell_equivalent="wrmsr -a 0x620 <max|min<<8>",
                runtime=True,
                execute=lambda: msr.set_uncore_dynamic(),
            ))

        # --- tickless (boot-time).
        plan.actions.append(TuningAction(
            description=f"grub: nohz={'on' if config.tickless else 'off'}",
            shell_equivalent=(
                f"grub: set nohz={'on' if config.tickless else 'off'}"),
            runtime=False,
            execute=lambda: grub.set_tickless(config.tickless),
        ))
        return plan

    def _set_governor_if_available(self, governor: str) -> None:
        if governor not in self._sysfs.available_governors():
            raise HostToolingError(
                f"governor {governor!r} unavailable under driver "
                f"{self._sysfs.scaling_driver()!r}; the driver change "
                f"requires a reboot first"
            )
        self._sysfs.set_governor(governor)

    # ------------------------------------------------------------------
    def apply(self, plan: TuningPlan,
              snapshot_first: bool = True) -> ApplyResult:
        """Execute *plan* in order.

        Args:
            plan: a plan built by :meth:`plan`.
            snapshot_first: capture a restore point before any change.

        Returns:
            The actions performed and the prior snapshot (if taken).

        Raises:
            HostToolingError: on the first failing action; actions
                already performed are **not** rolled back automatically
                (use the returned snapshot from a previous apply).
        """
        snapshot = capture_snapshot(self._fs) if snapshot_first else None
        performed: List[str] = []
        for action in plan.actions:
            action.execute()
            performed.append(action.description)
        return ApplyResult(
            performed=performed,
            needs_reboot=plan.needs_reboot,
            snapshot=snapshot,
        )

    def apply_config(self, config: HardwareConfig) -> ApplyResult:
        """Convenience: plan then apply in one call."""
        return self.apply(self.plan(config))
