"""A ``cpupower``-style convenience shim.

The paper uses the ``cpupower`` tool (a wrapper around the cpufreq
sysfs interface) to set frequency governors.  :class:`CpupowerShim`
provides the same verbs implemented directly on :class:`CpuSysfs`, and
additionally renders the equivalent shell commands so an operator can
reproduce every action by hand.
"""

from __future__ import annotations

from typing import List

from repro.host.filesystem import Filesystem
from repro.host.sysfs import CpuSysfs


class CpupowerShim:
    """``cpupower frequency-set``-like operations plus a command log."""

    def __init__(self, fs: Filesystem) -> None:
        self._sysfs = CpuSysfs(fs)
        self.command_log: List[str] = []

    def frequency_set_governor(self, governor: str) -> None:
        """Equivalent of ``cpupower frequency-set -g <governor>``."""
        self._sysfs.set_governor(governor)
        self.command_log.append(f"cpupower frequency-set -g {governor}")

    def frequency_set_fixed(self, freq_khz: int) -> None:
        """Equivalent of ``cpupower frequency-set -d X -u X``."""
        self._sysfs.pin_frequency_khz(freq_khz)
        mhz = freq_khz // 1000
        self.command_log.append(
            f"cpupower frequency-set -d {mhz}MHz -u {mhz}MHz")

    def idle_set_disable(self, state_index: int, disabled: bool) -> None:
        """Equivalent of ``cpupower idle-set -d/-e <state>``."""
        state_dir = f"state{state_index}"
        for cpu in self._sysfs.online_cpus():
            self._sysfs.set_cstate_disabled(cpu, state_dir, disabled)
        flag = "-d" if disabled else "-e"
        self.command_log.append(f"cpupower idle-set {flag} {state_index}")

    def frequency_info(self) -> dict:
        """Summary akin to ``cpupower frequency-info``."""
        min_khz, max_khz = self._sysfs.freq_range_khz()
        return {
            "driver": self._sysfs.scaling_driver(),
            "governor": self._sysfs.scaling_governor(),
            "available_governors": self._sysfs.available_governors(),
            "min_khz": min_khz,
            "max_khz": max_khz,
        }
