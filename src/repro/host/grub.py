"""Grub kernel-command-line editing for boot-time knobs.

Three of the paper's knobs are boot-time flags passed through
``/etc/default/grub``:

* ``intel_idle.max_cstate=<n>`` / ``idle=poll`` -- C-state ceiling,
* ``intel_pstate=disable`` -- fall back to ``acpi-cpufreq``,
* ``nohz=on|off`` -- tickless kernel.

:class:`GrubConfig` parses and rewrites ``GRUB_CMDLINE_LINUX_DEFAULT``
idempotently (re-applying a flag replaces the previous value rather
than appending duplicates).  It does **not** run ``update-grub`` --
callers decide when to regenerate and reboot.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.errors import HostToolingError
from repro.host.filesystem import Filesystem

GRUB_PATH = "/etc/default/grub"
_CMDLINE_KEY = "GRUB_CMDLINE_LINUX_DEFAULT"


class GrubConfig:
    """Read/modify the default kernel command line in grub config."""

    def __init__(self, fs: Filesystem, path: str = GRUB_PATH) -> None:
        self._fs = fs
        self._path = path

    # ------------------------------------------------------------------
    def cmdline(self) -> List[str]:
        """Current flags on the default kernel command line."""
        content = self._fs.read_text(self._path)
        match = re.search(
            rf'^{_CMDLINE_KEY}="([^"]*)"', content, flags=re.MULTILINE)
        if match is None:
            raise HostToolingError(
                f"{self._path} has no {_CMDLINE_KEY} line")
        return match.group(1).split()

    def cmdline_flags(self) -> Dict[str, Optional[str]]:
        """Flags as a mapping; valueless flags map to ``None``."""
        flags: Dict[str, Optional[str]] = {}
        for token in self.cmdline():
            if "=" in token:
                key, value = token.split("=", 1)
                flags[key] = value
            else:
                flags[token] = None
        return flags

    def _write_cmdline(self, tokens: List[str]) -> None:
        content = self._fs.read_text(self._path)
        line = f'{_CMDLINE_KEY}="{" ".join(tokens)}"'
        new_content, count = re.subn(
            rf'^{_CMDLINE_KEY}="[^"]*"', line, content, flags=re.MULTILINE)
        if count == 0:
            raise HostToolingError(
                f"{self._path} has no {_CMDLINE_KEY} line")
        self._fs.write_text(self._path, new_content)

    # ------------------------------------------------------------------
    def set_flag(self, key: str, value: Optional[str] = None) -> None:
        """Add or replace one flag on the command line (idempotent)."""
        token = key if value is None else f"{key}={value}"
        tokens = [
            t for t in self.cmdline()
            if t != key and not t.startswith(f"{key}=")
        ]
        tokens.append(token)
        self._write_cmdline(tokens)

    def clear_flag(self, key: str) -> None:
        """Remove one flag (and any ``key=value`` forms) if present."""
        tokens = [
            t for t in self.cmdline()
            if t != key and not t.startswith(f"{key}=")
        ]
        self._write_cmdline(tokens)

    # ----------------------------------------------------- paper knobs
    def set_max_cstate(self, deepest: str) -> None:
        """Configure the C-state ceiling for the *next boot*.

        Args:
            deepest: ``"C0"`` (emits ``idle=poll``), ``"C1"``, ``"C1E"``
                or ``"C6"`` (clears the ceiling).
        """
        ceilings = {"C0": None, "C1": 1, "C1E": 2, "C6": None}
        name = deepest.upper()
        if name not in ceilings:
            raise HostToolingError(f"unknown C-state {deepest!r}")
        self.clear_flag("idle")
        self.clear_flag("intel_idle.max_cstate")
        self.clear_flag("processor.max_cstate")
        if name == "C0":
            self.set_flag("idle", "poll")
        elif ceilings[name] is not None:
            self.set_flag("intel_idle.max_cstate", str(ceilings[name]))

    def set_pstate_driver(self, use_intel_pstate: bool) -> None:
        """Select the CPUFreq driver for the next boot."""
        if use_intel_pstate:
            self.clear_flag("intel_pstate")
        else:
            self.set_flag("intel_pstate", "disable")

    def set_tickless(self, enabled: bool) -> None:
        """Select tickless (nohz) behaviour for the next boot."""
        self.set_flag("nohz", "on" if enabled else "off")

    def requires_reboot(self) -> bool:
        """True -- grub changes only take effect after reboot."""
        return True
