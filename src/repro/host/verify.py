"""Verify that a host actually matches a HardwareConfig.

The paper's repeatability complaint cuts both ways: even when a paper
*does* document its client configuration, the machine may have drifted
(another user flipped SMT, a reboot reset grub staging, thermald
changed limits).  :func:`verify_host` compares the live state against
the intended :class:`~repro.config.HardwareConfig` and reports every
mismatch -- run it immediately before an experiment, the same way the
paper resets the environment between runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config.knobs import (
    ALL_CSTATES,
    FrequencyDriver,
    HardwareConfig,
    UncorePolicy,
)
from repro.host.filesystem import Filesystem
from repro.host.msr import MsrInterface
from repro.host.sysfs import CpuSysfs

#: sysfs driver spelling differs from the enum value.
_DRIVER_NAMES = {
    FrequencyDriver.INTEL_PSTATE: ("intel_pstate",),
    FrequencyDriver.ACPI_CPUFREQ: ("acpi-cpufreq", "acpi_cpufreq"),
}


@dataclass(frozen=True)
class Mismatch:
    """One divergence between intended and actual host state."""

    knob: str
    expected: str
    actual: str

    def describe(self) -> str:
        return f"{self.knob}: expected {self.expected}, found {self.actual}"


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one host verification."""

    config_name: str
    mismatches: List[Mismatch]

    @property
    def ok(self) -> bool:
        """True when the host matches the configuration exactly."""
        return not self.mismatches

    def render(self) -> str:
        if self.ok:
            return (f"host matches configuration "
                    f"{self.config_name!r}: OK")
        lines = [f"host DIVERGES from configuration "
                 f"{self.config_name!r}:"]
        lines.extend(f"  - {m.describe()}" for m in self.mismatches)
        return "\n".join(lines)


def verify_host(fs: Filesystem, config: HardwareConfig
                ) -> VerificationReport:
    """Compare the host behind *fs* against *config*.

    Checks every runtime-observable knob: enabled C-states, CPUFreq
    driver and governor, SMT, turbo (MSR 0x1A0) and the uncore policy
    (MSR 0x620 min==max for fixed).  Boot-time staging (grub) is not
    checked -- it describes the *next* boot, not this one.
    """
    sysfs = CpuSysfs(fs)
    msr = MsrInterface(fs)
    mismatches: List[Mismatch] = []

    # --- C-states ---------------------------------------------------------
    actual_states = {
        name.upper().replace("POLL", "C0")
        for name in sysfs.enabled_cstates()
    }
    expected_states = set(config.enabled_cstates)
    if actual_states != expected_states:
        order = {name: index for index, name in enumerate(ALL_CSTATES)}
        mismatches.append(Mismatch(
            knob="C-states",
            expected=",".join(sorted(expected_states, key=order.get)),
            actual=",".join(sorted(actual_states, key=order.get)),
        ))

    # --- driver / governor --------------------------------------------------
    driver = sysfs.scaling_driver()
    if driver not in _DRIVER_NAMES[config.frequency_driver]:
        mismatches.append(Mismatch(
            knob="Frequency Driver",
            expected=config.frequency_driver.value,
            actual=driver,
        ))
    governor = sysfs.scaling_governor()
    if governor != config.frequency_governor.value:
        mismatches.append(Mismatch(
            knob="Frequency Governor",
            expected=config.frequency_governor.value,
            actual=governor,
        ))

    # --- SMT ----------------------------------------------------------------
    if sysfs.smt_active() != config.smt:
        mismatches.append(Mismatch(
            knob="SMT",
            expected="on" if config.smt else "off",
            actual="on" if sysfs.smt_active() else "off",
        ))

    # --- turbo ----------------------------------------------------------------
    if msr.turbo_enabled() != config.turbo:
        mismatches.append(Mismatch(
            knob="Turbo",
            expected="on" if config.turbo else "off",
            actual="on" if msr.turbo_enabled() else "off",
        ))

    # --- uncore -----------------------------------------------------------
    min_mhz, max_mhz = msr.uncore_ratio_limits()
    actual_policy = (UncorePolicy.FIXED if min_mhz == max_mhz
                     else UncorePolicy.DYNAMIC)
    if actual_policy is not config.uncore:
        mismatches.append(Mismatch(
            knob="Uncore Frequency",
            expected=config.uncore.value,
            actual=f"{actual_policy.value} [{min_mhz},{max_mhz}] MHz",
        ))

    return VerificationReport(
        config_name=config.name, mismatches=mismatches)
