"""Pluggable filesystem for host tuning.

All sysfs/MSR/grub code reads and writes through this small interface
so that the identical logic runs on a real Linux host and in offline
tests.  :func:`make_skylake_tree` builds a synthetic sysfs/MSR layout
matching the paper's c220g5 machine (40 logical CPUs, 4 C-states,
intel_pstate) for the :class:`FakeFilesystem`.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Protocol

from repro.errors import SysfsError


class Filesystem(Protocol):
    """Minimal filesystem surface used by the host tooling."""

    def read_text(self, path: str) -> str:
        """Return the stripped text content of *path*."""
        ...

    def write_text(self, path: str, value: str) -> None:
        """Write *value* to *path* (no trailing newline handling)."""
        ...

    def exists(self, path: str) -> bool:
        """True if *path* exists."""
        ...

    def listdir(self, path: str) -> List[str]:
        """Names inside directory *path*, sorted."""
        ...


class RealFilesystem:
    """Filesystem backed by the actual OS. Use on a live host (root)."""

    def read_text(self, path: str) -> str:
        try:
            with open(path, "r", encoding="ascii") as handle:
                return handle.read().strip()
        except OSError as exc:
            raise SysfsError(f"cannot read {path}: {exc}") from exc

    def write_text(self, path: str, value: str) -> None:
        try:
            with open(path, "w", encoding="ascii") as handle:
                handle.write(value)
        except OSError as exc:
            raise SysfsError(f"cannot write {path}: {exc}") from exc

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def listdir(self, path: str) -> List[str]:
        try:
            return sorted(os.listdir(path))
        except OSError as exc:
            raise SysfsError(f"cannot list {path}: {exc}") from exc


class FakeFilesystem:
    """In-memory filesystem with a write journal, for tests/dry runs.

    Attributes:
        files: path -> current content.
        journal: ordered list of ``(path, value)`` writes performed.
        read_only: paths that reject writes (to simulate e.g. a kernel
            that compiled out a knob).
    """

    def __init__(self, files: Dict[str, str] = None) -> None:
        self.files: Dict[str, str] = dict(files or {})
        self.journal: List[tuple] = []
        self.read_only: set = set()

    def read_text(self, path: str) -> str:
        if path not in self.files:
            raise SysfsError(f"cannot read {path}: no such file")
        return self.files[path].strip()

    def write_text(self, path: str, value: str) -> None:
        if path in self.read_only:
            raise SysfsError(f"cannot write {path}: read-only")
        if path not in self.files:
            raise SysfsError(f"cannot write {path}: no such file")
        self.files[path] = value
        self.journal.append((path, value))

    def exists(self, path: str) -> bool:
        if path in self.files:
            return True
        prefix = path.rstrip("/") + "/"
        return any(name.startswith(prefix) for name in self.files)

    def listdir(self, path: str) -> List[str]:
        prefix = path.rstrip("/") + "/"
        names = set()
        for name in self.files:
            if name.startswith(prefix):
                rest = name[len(prefix):]
                names.add(rest.split("/", 1)[0])
        if not names and path not in self.files:
            raise SysfsError(f"cannot list {path}: no such directory")
        return sorted(names)


#: C-state directory layout used by intel_idle on the modelled machine.
_CPUIDLE_STATES = (
    ("state0", "POLL", "0", "0"),
    ("state1", "C1", "2", "2"),
    ("state2", "C1E", "10", "20"),
    ("state3", "C6", "133", "600"),
)


def make_skylake_tree(num_cpus: int = 40,
                      driver: str = "intel_pstate",
                      governor: str = "powersave") -> Dict[str, str]:
    """Build a synthetic sysfs/MSR file map for a c220g5-like host.

    Returns:
        A path -> content dict suitable for :class:`FakeFilesystem`.
    """
    files: Dict[str, str] = {}
    cpu_root = "/sys/devices/system/cpu"
    files[f"{cpu_root}/online"] = f"0-{num_cpus - 1}"
    files[f"{cpu_root}/smt/control"] = "on"
    files[f"{cpu_root}/smt/active"] = "1"
    files[f"{cpu_root}/cpuidle/current_driver"] = "intel_idle"
    files[f"{cpu_root}/intel_pstate/no_turbo"] = "0"

    for cpu in range(num_cpus):
        base = f"{cpu_root}/cpu{cpu}"
        for state_dir, name, latency, residency in _CPUIDLE_STATES:
            sbase = f"{base}/cpuidle/{state_dir}"
            files[f"{sbase}/name"] = name
            files[f"{sbase}/latency"] = latency
            files[f"{sbase}/residency"] = residency
            files[f"{sbase}/disable"] = "0"
        fbase = f"{base}/cpufreq"
        files[f"{fbase}/scaling_driver"] = driver
        files[f"{fbase}/scaling_governor"] = governor
        files[f"{fbase}/scaling_available_governors"] = (
            "performance powersave")
        files[f"{fbase}/scaling_min_freq"] = "800000"
        files[f"{fbase}/scaling_max_freq"] = "3000000"
        files[f"{fbase}/cpuinfo_min_freq"] = "800000"
        files[f"{fbase}/cpuinfo_max_freq"] = "3000000"
        files[f"{fbase}/base_frequency"] = "2200000"
        # MSR device nodes: store 8-byte values as hex strings.
        files[f"/dev/cpu/{cpu}/msr@0x1a0"] = "0x850089"
        files[f"/dev/cpu/{cpu}/msr@0x620"] = "0x71d"

    files["/etc/default/grub"] = (
        'GRUB_DEFAULT=0\n'
        'GRUB_TIMEOUT=2\n'
        'GRUB_CMDLINE_LINUX_DEFAULT="quiet splash"\n'
        'GRUB_CMDLINE_LINUX=""\n'
    )
    return files


def parse_cpu_list(spec: str) -> List[int]:
    """Parse a kernel CPU list like ``"0-3,8,10-11"`` into ints.

    Raises:
        SysfsError: if the specification is malformed.
    """
    cpus: List[int] = []
    spec = spec.strip()
    if not spec:
        return cpus
    for part in spec.split(","):
        part = part.strip()
        try:
            if "-" in part:
                lo_text, hi_text = part.split("-", 1)
                lo, hi = int(lo_text), int(hi_text)
                if hi < lo:
                    raise ValueError
                cpus.extend(range(lo, hi + 1))
            else:
                cpus.append(int(part))
        except ValueError:
            raise SysfsError(f"malformed CPU list {spec!r}") from None
    return cpus


def format_cpu_list(cpus: Iterable[int]) -> str:
    """Format ints as a compact kernel CPU list (inverse of parse)."""
    ordered = sorted(set(int(c) for c in cpus))
    if not ordered:
        return ""
    ranges: List[List[int]] = [[ordered[0], ordered[0]]]
    for cpu in ordered[1:]:
        if cpu == ranges[-1][1] + 1:
            ranges[-1][1] = cpu
        else:
            ranges.append([cpu, cpu])
    return ",".join(
        f"{lo}" if lo == hi else f"{lo}-{hi}" for lo, hi in ranges)
