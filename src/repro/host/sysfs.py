"""sysfs access: cpuidle C-states, cpufreq governors, SMT control.

Wraps the ``/sys/devices/system/cpu`` hierarchy.  All paths mirror the
real kernel interface so :class:`CpuSysfs` works unmodified against a
live host through :class:`~repro.host.filesystem.RealFilesystem`.
"""

from __future__ import annotations

from typing import List

from repro.errors import SysfsError
from repro.host.filesystem import Filesystem, parse_cpu_list

CPU_ROOT = "/sys/devices/system/cpu"


class CpuSysfs:
    """Typed accessors over the cpu sysfs tree."""

    def __init__(self, fs: Filesystem) -> None:
        self._fs = fs

    # ------------------------------------------------------------- CPUs
    def online_cpus(self) -> List[int]:
        """CPU numbers currently online."""
        return parse_cpu_list(self._fs.read_text(f"{CPU_ROOT}/online"))

    # --------------------------------------------------------- cpuidle
    def cstate_dirs(self, cpu: int) -> List[str]:
        """State directory names (``state0`` ...) for *cpu*."""
        return self._fs.listdir(f"{CPU_ROOT}/cpu{cpu}/cpuidle")

    def cstate_name(self, cpu: int, state_dir: str) -> str:
        """Kernel name of one C-state (e.g. ``C1E``)."""
        return self._fs.read_text(
            f"{CPU_ROOT}/cpu{cpu}/cpuidle/{state_dir}/name")

    def cstate_latency_us(self, cpu: int, state_dir: str) -> int:
        """Documented exit latency of one C-state."""
        return int(self._fs.read_text(
            f"{CPU_ROOT}/cpu{cpu}/cpuidle/{state_dir}/latency"))

    def cstate_disabled(self, cpu: int, state_dir: str) -> bool:
        """Whether one C-state is currently disabled."""
        return self._fs.read_text(
            f"{CPU_ROOT}/cpu{cpu}/cpuidle/{state_dir}/disable") == "1"

    def set_cstate_disabled(self, cpu: int, state_dir: str,
                            disabled: bool) -> None:
        """Enable/disable one C-state on one CPU."""
        self._fs.write_text(
            f"{CPU_ROOT}/cpu{cpu}/cpuidle/{state_dir}/disable",
            "1" if disabled else "0")

    def set_enabled_cstates(self, enabled_names) -> None:
        """Disable every C-state not named in *enabled_names*, all CPUs.

        ``POLL``/``C0`` is always left enabled (it cannot be disabled on
        real kernels either).
        """
        enabled = {str(n).upper() for n in enabled_names}
        enabled |= {"C0", "POLL"}
        for cpu in self.online_cpus():
            for state_dir in self.cstate_dirs(cpu):
                name = self.cstate_name(cpu, state_dir).upper()
                if name in ("POLL", "C0"):
                    continue
                self.set_cstate_disabled(cpu, state_dir, name not in enabled)

    def enabled_cstates(self, cpu: int = 0) -> List[str]:
        """Names of currently-enabled C-states on *cpu*."""
        names = []
        for state_dir in self.cstate_dirs(cpu):
            if not self.cstate_disabled(cpu, state_dir):
                names.append(self.cstate_name(cpu, state_dir))
        return names

    # --------------------------------------------------------- cpufreq
    def scaling_driver(self, cpu: int = 0) -> str:
        """Active CPUFreq driver (``intel_pstate``/``acpi-cpufreq``)."""
        return self._fs.read_text(
            f"{CPU_ROOT}/cpu{cpu}/cpufreq/scaling_driver")

    def scaling_governor(self, cpu: int = 0) -> str:
        """Active CPUFreq governor for *cpu*."""
        return self._fs.read_text(
            f"{CPU_ROOT}/cpu{cpu}/cpufreq/scaling_governor")

    def available_governors(self, cpu: int = 0) -> List[str]:
        """Governors offered by the active driver."""
        text = self._fs.read_text(
            f"{CPU_ROOT}/cpu{cpu}/cpufreq/scaling_available_governors")
        return text.split()

    def set_governor(self, governor: str) -> None:
        """Set the governor on every online CPU.

        Raises:
            SysfsError: if the driver does not offer *governor*.
        """
        available = self.available_governors()
        if governor not in available:
            raise SysfsError(
                f"governor {governor!r} not offered by driver "
                f"{self.scaling_driver()!r}; available: {available}"
            )
        for cpu in self.online_cpus():
            self._fs.write_text(
                f"{CPU_ROOT}/cpu{cpu}/cpufreq/scaling_governor", governor)

    def freq_range_khz(self, cpu: int = 0) -> tuple:
        """Current (min, max) scaling limits in kHz."""
        base = f"{CPU_ROOT}/cpu{cpu}/cpufreq"
        return (
            int(self._fs.read_text(f"{base}/scaling_min_freq")),
            int(self._fs.read_text(f"{base}/scaling_max_freq")),
        )

    def pin_frequency_khz(self, freq_khz: int) -> None:
        """Pin min == max == *freq_khz* on every online CPU."""
        for cpu in self.online_cpus():
            base = f"{CPU_ROOT}/cpu{cpu}/cpufreq"
            hw_min = int(self._fs.read_text(f"{base}/cpuinfo_min_freq"))
            hw_max = int(self._fs.read_text(f"{base}/cpuinfo_max_freq"))
            if not hw_min <= freq_khz <= hw_max:
                raise SysfsError(
                    f"cpu{cpu}: {freq_khz} kHz outside hardware range "
                    f"[{hw_min}, {hw_max}]"
                )
            self._fs.write_text(f"{base}/scaling_min_freq", str(freq_khz))
            self._fs.write_text(f"{base}/scaling_max_freq", str(freq_khz))

    # ------------------------------------------------------------- SMT
    def smt_active(self) -> bool:
        """Whether SMT siblings are currently online."""
        return self._fs.read_text(f"{CPU_ROOT}/smt/active") == "1"

    def set_smt(self, enabled: bool) -> None:
        """Flip the global SMT control knob."""
        self._fs.write_text(
            f"{CPU_ROOT}/smt/control", "on" if enabled else "off")
        self._fs.write_text(
            f"{CPU_ROOT}/smt/active", "1" if enabled else "0")

    # ------------------------------------------------------ intel_pstate
    def pstate_no_turbo(self) -> bool:
        """intel_pstate's no_turbo flag (True means turbo disabled)."""
        return self._fs.read_text(
            f"{CPU_ROOT}/intel_pstate/no_turbo") == "1"

    def set_pstate_no_turbo(self, no_turbo: bool) -> None:
        """Set intel_pstate's no_turbo flag."""
        self._fs.write_text(
            f"{CPU_ROOT}/intel_pstate/no_turbo", "1" if no_turbo else "0")
