"""Model-specific register access (turbo MSR 0x1A0, uncore MSR 0x620).

The paper toggles turbo via MSR ``0x1a0`` (IA32_MISC_ENABLE, turbo
disengage bit 38) and pins the uncore frequency via MSR ``0x620``
(UNCORE_RATIO_LIMIT: max ratio in bits 6:0, min ratio in bits 14:8;
the ratio is multiplied by 100 MHz).

On a real host the registers live in ``/dev/cpu/<n>/msr`` (the
``msr`` kernel module).  To keep the :class:`Filesystem` abstraction
uniform we address them as ``/dev/cpu/<n>/msr@0x<reg>`` pseudo-files
holding hex strings; :class:`RealMsrBackend` would translate to seeks
on the device node on a live system.
"""

from __future__ import annotations

from typing import List

from repro.errors import MsrError
from repro.host.filesystem import Filesystem, parse_cpu_list

#: IA32_MISC_ENABLE; bit 38 = turbo disengage.
MSR_MISC_ENABLE = 0x1A0
#: Alias used by the paper's text ("MSR 0x1a0").
MSR_TURBO_RATIO = MSR_MISC_ENABLE
#: UNCORE_RATIO_LIMIT.
MSR_UNCORE_RATIO = 0x620

TURBO_DISENGAGE_BIT = 38
_UNCORE_MAX_MASK = 0x7F
_UNCORE_MIN_SHIFT = 8
#: Uncore ratio unit in MHz.
UNCORE_RATIO_MHZ = 100


class MsrInterface:
    """Read/modify/write MSRs on every online CPU."""

    def __init__(self, fs: Filesystem) -> None:
        self._fs = fs

    # ------------------------------------------------------------------
    def _cpus(self) -> List[int]:
        return parse_cpu_list(
            self._fs.read_text("/sys/devices/system/cpu/online"))

    def _path(self, cpu: int, register: int) -> str:
        return f"/dev/cpu/{cpu}/msr@{register:#x}"

    def read(self, cpu: int, register: int) -> int:
        """Read one MSR on one CPU.

        Raises:
            MsrError: if the register node is missing or malformed.
        """
        path = self._path(cpu, register)
        try:
            return int(self._fs.read_text(path), 16)
        except MsrError:
            raise
        except Exception as exc:
            raise MsrError(
                f"cannot read MSR {register:#x} on cpu{cpu}: {exc}"
            ) from exc

    def write(self, cpu: int, register: int, value: int) -> None:
        """Write one MSR on one CPU."""
        if value < 0 or value >= (1 << 64):
            raise MsrError(f"MSR value out of range: {value:#x}")
        self._fs.write_text(self._path(cpu, register), f"{value:#x}")

    def write_all(self, register: int, value: int) -> None:
        """Write one MSR on every online CPU."""
        for cpu in self._cpus():
            self.write(cpu, register, value)

    # ------------------------------------------------------------ turbo
    def turbo_enabled(self, cpu: int = 0) -> bool:
        """True when turbo is enabled (disengage bit clear)."""
        value = self.read(cpu, MSR_MISC_ENABLE)
        return not (value >> TURBO_DISENGAGE_BIT) & 1

    def set_turbo(self, enabled: bool) -> None:
        """Set turbo on every CPU via the disengage bit."""
        for cpu in self._cpus():
            value = self.read(cpu, MSR_MISC_ENABLE)
            if enabled:
                value &= ~(1 << TURBO_DISENGAGE_BIT)
            else:
                value |= (1 << TURBO_DISENGAGE_BIT)
            self.write(cpu, MSR_MISC_ENABLE, value)

    # ----------------------------------------------------------- uncore
    def uncore_ratio_limits(self, cpu: int = 0) -> tuple:
        """Current (min_mhz, max_mhz) uncore frequency limits."""
        value = self.read(cpu, MSR_UNCORE_RATIO)
        max_ratio = value & _UNCORE_MAX_MASK
        min_ratio = (value >> _UNCORE_MIN_SHIFT) & _UNCORE_MAX_MASK
        return (min_ratio * UNCORE_RATIO_MHZ, max_ratio * UNCORE_RATIO_MHZ)

    def set_uncore_fixed(self, freq_mhz: int) -> None:
        """Pin the uncore: min == max == *freq_mhz* on every CPU.

        Raises:
            MsrError: if *freq_mhz* is not a positive multiple of the
                100 MHz ratio unit representable in 7 bits.
        """
        ratio, remainder = divmod(int(freq_mhz), UNCORE_RATIO_MHZ)
        if remainder or not 1 <= ratio <= _UNCORE_MAX_MASK:
            raise MsrError(
                f"uncore frequency {freq_mhz} MHz is not a valid ratio"
            )
        value = ratio | (ratio << _UNCORE_MIN_SHIFT)
        self.write_all(MSR_UNCORE_RATIO, value)

    def set_uncore_dynamic(self, min_mhz: int = 1200,
                           max_mhz: int = 2400) -> None:
        """Restore a dynamic uncore range on every CPU."""
        min_ratio = int(min_mhz) // UNCORE_RATIO_MHZ
        max_ratio = int(max_mhz) // UNCORE_RATIO_MHZ
        if not 1 <= min_ratio <= max_ratio <= _UNCORE_MAX_MASK:
            raise MsrError(
                f"invalid uncore range [{min_mhz}, {max_mhz}] MHz"
            )
        value = max_ratio | (min_ratio << _UNCORE_MIN_SHIFT)
        self.write_all(MSR_UNCORE_RATIO, value)
