"""Real-host tuning toolkit: sysfs, MSR, grub and cpupower.

This package is what you would actually run on a physical client or
server machine to realize the paper's LP/HP/baseline configurations
(Table II).  Every operation goes through a pluggable
:class:`~repro.host.filesystem.Filesystem`, so the exact same code is

* executed against the live ``/sys`` and ``/dev/cpu/*/msr`` tree on a
  real Linux host (:class:`~repro.host.filesystem.RealFilesystem`), or
* exercised against a synthetic Skylake sysfs tree in tests and dry
  runs (:class:`~repro.host.filesystem.FakeFilesystem`).

The high-level entry point is :class:`~repro.host.tuner.HostTuner`,
which turns a :class:`~repro.config.HardwareConfig` into a concrete
action plan, applies it, and can snapshot/restore the previous state.
"""

from repro.host.filesystem import (
    FakeFilesystem,
    Filesystem,
    RealFilesystem,
    make_skylake_tree,
)
from repro.host.sysfs import CpuSysfs
from repro.host.msr import MSR_TURBO_RATIO, MSR_MISC_ENABLE, MSR_UNCORE_RATIO, MsrInterface
from repro.host.grub import GrubConfig
from repro.host.cpupower import CpupowerShim
from repro.host.snapshot import HostSnapshot, capture_snapshot
from repro.host.tuner import HostTuner, TuningAction, TuningPlan
from repro.host.verify import VerificationReport, verify_host

__all__ = [
    "verify_host",
    "VerificationReport",
    "Filesystem",
    "RealFilesystem",
    "FakeFilesystem",
    "make_skylake_tree",
    "CpuSysfs",
    "MsrInterface",
    "MSR_MISC_ENABLE",
    "MSR_TURBO_RATIO",
    "MSR_UNCORE_RATIO",
    "GrubConfig",
    "CpupowerShim",
    "HostSnapshot",
    "capture_snapshot",
    "HostTuner",
    "TuningAction",
    "TuningPlan",
]
