"""Kernel timer behaviour: tick interference and sleep slack.

Two timer-related phenomena affect a block-wait workload generator:

* **Sleep slack** -- a thread sleeping until its next send time is
  woken by a timer whose expiry the kernel is allowed to defer (timer
  slack, tick alignment).  The actual wake-up lands up to tens of
  microseconds *after* the requested time, perturbing the inter-arrival
  distribution (the "time-sensitive" risk in Table III).
* **Tick interference** -- on a non-tickless kernel the periodic
  scheduling-clock tick occasionally steals the CPU right when an
  event needs handling.

High-resolution, performance-tuned setups shrink both effects but do
not remove them entirely; the model gives every configuration a small
floor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config.knobs import FrequencyGovernor, HardwareConfig
from repro.parameters import SkylakeParameters

#: Residual wake-up jitter of a tuned high-resolution timer path.
HIGH_RES_SLACK_US = 1.0


class TimerModel:
    """Sleep-wakeup slack for block-wait sleeps."""

    def __init__(self, params: SkylakeParameters,
                 config: HardwareConfig) -> None:
        self._params = params
        self._config = config
        tuned = (config.frequency_governor is FrequencyGovernor.PERFORMANCE
                 and config.idle_poll)
        self._slack_us = (
            HIGH_RES_SLACK_US if tuned else params.sleep_slack_us)

    @property
    def slack_us(self) -> float:
        """Maximum additional delay applied to a timed sleep."""
        return self._slack_us

    def sleep_overshoot_us(
            self, rng: Optional[np.random.Generator]) -> float:
        """Sample how late a timed sleep actually wakes.

        Args:
            rng: random stream (generator or batched stream); ``None``
                returns the expectation.
        """
        if rng is None:
            return self._slack_us / 2.0
        # slack * u is bit-identical to Generator.uniform(0, slack)
        # (== 0.0 + (slack - 0.0) * next_double) without its argument
        # broadcasting overhead -- the single hottest scalar draw on
        # the block-wait client path.
        return self._slack_us * rng.random()
