"""Simulated Skylake-class hardware: C-states, DVFS, SMT, uncore, timers.

This package is the substitute for the paper's physical CloudLab
c220g5 nodes.  It models the *timing* behaviour of the client and
server machines -- wake-up latencies, frequency ramps, SMT
interference -- because those are the mechanisms the paper identifies
as the source of client-caused measurement error.
"""

from repro.hardware.cstates import CStateGovernor, IdleDecision
from repro.hardware.frequency import FrequencyModel, FrequencyDecision
from repro.hardware.smt import SmtModel
from repro.hardware.uncore import UncoreModel
from repro.hardware.timer import TimerModel
from repro.hardware.core import CoreOccupancy, SimCore
from repro.hardware.machine import Machine
from repro.hardware.power import EnergyBreakdown, PowerModel

__all__ = [
    "PowerModel",
    "EnergyBreakdown",
    "CStateGovernor",
    "IdleDecision",
    "FrequencyModel",
    "FrequencyDecision",
    "SmtModel",
    "UncoreModel",
    "TimerModel",
    "SimCore",
    "CoreOccupancy",
    "Machine",
]
