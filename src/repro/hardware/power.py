"""Client-machine power accounting.

The LP configuration exists for a reason: deep C-states and
utilization-scaled frequencies save real energy.  This module attaches
a simple power model to the hardware timing model so experiments can
report the energy cost of the HP recommendation -- the flip side of
the paper's accuracy argument (an experimenter deciding to pin
``idle=poll`` + ``performance`` on a fleet of client machines should
know what it costs).

The model is a standard CMOS-style decomposition: active power scales
roughly with f*V^2 (we use f^2.2 as a proxy since V scales with f),
idle power is the resident C-state's fraction of active power, and a
polling idle loop burns near-active power forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.knobs import HardwareConfig
from repro.errors import ConfigurationError
from repro.parameters import SkylakeParameters, cstates_by_name

#: Per-core active power at nominal frequency, in watts (Skylake-class).
ACTIVE_WATTS_AT_NOMINAL = 6.0
#: Exponent applied to the frequency ratio (captures f*V^2 scaling).
FREQUENCY_POWER_EXPONENT = 2.2


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one core over one run.

    Attributes:
        busy_joules: energy spent executing.
        idle_joules: energy spent idle (sleeping or polling).
        busy_us: accounted busy time.
        idle_us: accounted idle time.
    """

    busy_joules: float
    idle_joules: float
    busy_us: float
    idle_us: float

    @property
    def total_joules(self) -> float:
        """Total energy over the accounted interval."""
        return self.busy_joules + self.idle_joules

    @property
    def average_watts(self) -> float:
        """Mean power over the accounted interval."""
        total_us = self.busy_us + self.idle_us
        if total_us <= 0:
            return 0.0
        return self.total_joules / (total_us / 1e6)


class PowerModel:
    """Energy accounting for one core under one configuration."""

    def __init__(self, params: SkylakeParameters,
                 config: HardwareConfig) -> None:
        self._params = params
        self._config = config
        self._cstates = cstates_by_name()

    # ------------------------------------------------------------------
    def active_watts(self, freq_ghz: float) -> float:
        """Active power at *freq_ghz*."""
        if freq_ghz <= 0:
            raise ConfigurationError(
                f"frequency must be positive, got {freq_ghz}"
            )
        ratio = freq_ghz / self._params.nominal_freq_ghz
        return ACTIVE_WATTS_AT_NOMINAL * ratio ** FREQUENCY_POWER_EXPONENT

    def idle_watts(self, polling: bool = False) -> float:
        """Idle power: poll loops burn near-active power; sleep states
        burn their relative fraction."""
        if polling or self._config.idle_poll:
            # A polling idle loop executes continuously at the current
            # frequency; the performance configs keep that at max.
            return 0.85 * self.active_watts(
                self._params.turbo_freq_ghz if self._config.turbo
                else self._params.nominal_freq_ghz)
        deepest = self._cstates[self._config.deepest_cstate()]
        return (ACTIVE_WATTS_AT_NOMINAL * deepest.power_relative)

    # ------------------------------------------------------------------
    def run_energy(self, busy_us: float, idle_us: float,
                   busy_freq_ghz: float) -> EnergyBreakdown:
        """Energy of a run with the given busy/idle split.

        Args:
            busy_us: time spent executing.
            idle_us: time spent idle.
            busy_freq_ghz: (average) frequency while executing.
        """
        if busy_us < 0 or idle_us < 0:
            raise ConfigurationError("times must be >= 0")
        busy_joules = self.active_watts(busy_freq_ghz) * busy_us / 1e6
        idle_joules = self.idle_watts() * idle_us / 1e6
        return EnergyBreakdown(
            busy_joules=busy_joules, idle_joules=idle_joules,
            busy_us=busy_us, idle_us=idle_us)


def compare_client_energy(params: SkylakeParameters,
                          lp: HardwareConfig, hp: HardwareConfig,
                          busy_us: float, horizon_us: float,
                          lp_freq_ghz: float,
                          hp_freq_ghz: float) -> float:
    """HP-to-LP energy ratio for the same work over the same horizon.

    Returns:
        ``hp_joules / lp_joules`` -- how much more energy the tuned
        client burns to produce its accurate measurements.
    """
    if horizon_us < busy_us:
        raise ConfigurationError(
            "horizon must cover the busy time"
        )
    lp_energy = PowerModel(params, lp).run_energy(
        busy_us, horizon_us - busy_us, lp_freq_ghz).total_joules
    hp_energy = PowerModel(params, hp).run_energy(
        busy_us, horizon_us - busy_us, hp_freq_ghz).total_joules
    if lp_energy <= 0:
        raise ConfigurationError("LP energy must be positive")
    return hp_energy / lp_energy
