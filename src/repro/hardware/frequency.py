"""DVFS: frequency drivers, governors and transition latency.

The CPUFreq subsystem has two halves (paper Section IV-C): the
*driver* (``intel_pstate`` or ``acpi-cpufreq``) that talks to the
hardware, and the *governor* (``powersave``, ``performance``, ...)
that picks the frequency.  The model captures the behaviours the paper
depends on:

* ``performance`` pins the maximum frequency (turbo if enabled);
* ``powersave`` under ``intel_pstate`` scales frequency with recent
  utilization, so a mostly-idle client core runs near 0.8 GHz and its
  event-handling code runs ~2.7x slower than at 2.2 GHz nominal;
* ``powersave`` under ``acpi-cpufreq`` pins the *minimum* frequency;
* every frequency change stalls the core for ~30 us (legacy DVFS [15]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.knobs import (
    FrequencyDriver,
    FrequencyGovernor,
    HardwareConfig,
)
from repro.errors import ConfigurationError
from repro.parameters import SkylakeParameters


@dataclass(frozen=True)
class FrequencyDecision:
    """Outcome of one governor evaluation.

    Attributes:
        freq_ghz: the frequency in effect after the evaluation.
        transition_stall_us: stall paid now if the frequency changed.
    """

    freq_ghz: float
    transition_stall_us: float


class FrequencyModel:
    """Per-core frequency state driven by utilization accounting.

    Call :meth:`account_busy` whenever the core does work, then
    :meth:`evaluate` at event boundaries; the governor re-decides the
    frequency once per ``governor_interval_us`` of simulated time.
    """

    def __init__(self, params: SkylakeParameters,
                 config: HardwareConfig) -> None:
        self._params = params
        self._config = config
        self._max_freq = (
            params.turbo_freq_ghz if config.turbo else params.nominal_freq_ghz)
        self._min_freq = params.min_freq_ghz
        self._freq = self._initial_freq()
        self._window_start = 0.0
        self._busy_accum_us = 0.0
        self.transitions = 0
        self._interval_us = params.governor_interval_us
        self._steady = (self._freq, 0.0)

    # ------------------------------------------------------------------
    def _initial_freq(self) -> float:
        governor = self._config.frequency_governor
        if governor is FrequencyGovernor.PERFORMANCE:
            return self._max_freq
        return self._min_freq

    @property
    def current_freq_ghz(self) -> float:
        """The frequency currently in effect."""
        return self._freq

    @property
    def max_freq_ghz(self) -> float:
        """The ceiling (turbo when enabled, otherwise nominal)."""
        return self._max_freq

    # ------------------------------------------------------------------
    def account_busy(self, busy_us: float) -> None:
        """Record *busy_us* of work inside the current governor window."""
        if busy_us < 0:
            raise ConfigurationError(f"negative busy time {busy_us!r}")
        self._busy_accum_us += busy_us

    def evaluate_fast(self, now_us: float) -> "tuple[float, float]":
        """Hot-path governor evaluation: ``(freq_ghz, stall_us)``.

        Same decisions and float arithmetic as :meth:`evaluate`
        without allocating a :class:`FrequencyDecision` per event (the
        steady-state tuple is cached and reused until the frequency
        actually changes).
        """
        elapsed = now_us - self._window_start
        if elapsed < self._interval_us:
            return self._steady

        utilization = min(1.0, max(0.0, self._busy_accum_us / elapsed))
        self._window_start = now_us
        self._busy_accum_us = 0.0

        target = self._target_freq(utilization)
        if abs(target - self._freq) < 1e-9:
            return self._steady
        self._freq = target
        self._steady = (target, 0.0)
        self.transitions += 1
        return (target, self._params.dvfs_transition_us)

    def evaluate(self, now_us: float) -> FrequencyDecision:
        """Re-run the governor if its evaluation interval has elapsed.

        Returns:
            The frequency in effect and any DVFS stall to pay now.
        """
        freq, stall = self.evaluate_fast(now_us)
        return FrequencyDecision(freq, stall)

    # ------------------------------------------------------------------
    def _target_freq(self, utilization: float) -> float:
        governor = self._config.frequency_governor
        driver = self._config.frequency_driver

        if governor is FrequencyGovernor.PERFORMANCE:
            return self._max_freq

        if governor is FrequencyGovernor.POWERSAVE:
            if driver is FrequencyDriver.ACPI_CPUFREQ:
                # Legacy powersave: pin the minimum frequency.
                return self._min_freq
            # intel_pstate powersave: proportional-with-headroom scaling.
            # It practically never sustains turbo residency, so the
            # effective ceiling is the nominal frequency even when the
            # turbo knob is on (see config_warnings).
            ceiling = min(self._max_freq, self._params.nominal_freq_ghz)
            ramp = self._params.governor_ramp_threshold
            scaled = min(1.0, utilization / ramp)
            return self._min_freq + (ceiling - self._min_freq) * scaled

        if governor is FrequencyGovernor.ONDEMAND:
            # Jump to max above the up-threshold, else proportional.
            if utilization >= self._params.governor_ramp_threshold:
                return self._max_freq
            span = self._max_freq - self._min_freq
            return self._min_freq + span * utilization

        if governor is FrequencyGovernor.SCHEDUTIL:
            target = 1.25 * utilization * self._max_freq
            return min(self._max_freq, max(self._min_freq, target))

        raise ConfigurationError(
            f"unhandled governor {governor!r}")  # pragma: no cover
