"""Uncore frequency scaling (MSR 0x620).

The uncore -- last-level cache, ring/mesh interconnect, memory and IO
controllers -- has its own frequency domain.  With the *dynamic*
policy the uncore clocks down while the core domain idles, so the
first memory/IO-heavy operation after an idle period observes extra
latency until the uncore ramps back up.  With the *fixed* policy (the
HP client and the server baseline) the penalty disappears.
"""

from __future__ import annotations

from repro.config.knobs import HardwareConfig, UncorePolicy
from repro.parameters import SkylakeParameters

#: Idle gap beyond which a dynamic uncore has clocked down.
UNCORE_RAMP_DOWN_GAP_US = 100.0


class UncoreModel:
    """Per-event uncore ramp-up penalty."""

    def __init__(self, params: SkylakeParameters,
                 config: HardwareConfig) -> None:
        self._params = params
        self._dynamic = config.uncore is UncorePolicy.DYNAMIC

    @property
    def dynamic(self) -> bool:
        """True when uncore frequency scaling is dynamic."""
        return self._dynamic

    def wake_penalty_us(self, idle_gap_us: float) -> float:
        """Extra latency for the first event after *idle_gap_us* idle."""
        if not self._dynamic:
            return 0.0
        if idle_gap_us <= UNCORE_RAMP_DOWN_GAP_US:
            return 0.0
        return self._params.uncore_dynamic_penalty_us
