"""Simultaneous multithreading (SMT) effects.

Two effects matter for the paper's Fig. 2 study:

* With SMT **enabled**, the service's worker threads share physical
  cores with OS housekeeping (softirq/NAPI network processing, timers),
  so a request is rarely preempted -- at the cost of a small constant
  slowdown from shared front-end resources.
* With SMT **disabled**, housekeeping must run *on* the worker cores;
  a request then suffers an interference episode with a probability
  that grows with utilization.  This is why the paper's HP client sees
  SMT improve the 99th-percentile latency by up to 13% at high load.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.parameters import SkylakeParameters


class SmtModel:
    """Per-request SMT interference/overhead model for a server.

    Args:
        params: machine constants.
        smt_enabled: the SMT knob.
        run_intensity: run-level multiplier on the interference
            probability (how much softirq/OS pressure this particular
            run happens to see); sampled once per run by the station.
    """

    def __init__(self, params: SkylakeParameters, smt_enabled: bool,
                 run_intensity: float = 1.0) -> None:
        if run_intensity < 0:
            raise ValueError(
                f"run_intensity must be >= 0, got {run_intensity}"
            )
        self._params = params
        self.smt_enabled = bool(smt_enabled)
        self.run_intensity = float(run_intensity)
        # Hot-path constants (read per request by interference_us).
        self._broad_us = params.smt_broad_us
        self._interference_scale = params.smt_off_interference_scale
        self._interference_mean_us = params.smt_interference_us

    def logical_threads(self, physical_cores: int) -> int:
        """Number of hardware threads exposed by *physical_cores*."""
        return physical_cores * (2 if self.smt_enabled else 1)

    def service_time_factor(self) -> float:
        """Constant multiplicative factor on every request's service time."""
        if self.smt_enabled:
            return 1.0 + self._params.smt_enabled_overhead
        return 1.0

    def interference_us(self, utilization: float,
                        rng: Optional[np.random.Generator]) -> float:
        """Sample the interference delay a request suffers, if any.

        Two components, both absent when SMT is enabled (housekeeping
        runs on sibling threads):

        * a *broad* component -- network RX/TX softirq work stealing
          worker cycles, paid by every request in proportion to load;
        * an *episodic* component -- the occasional full preemption of
          a worker, which lands in the latency tail.

        Args:
            utilization: instantaneous server utilization in [0, 1].
            rng: random stream; ``None`` returns the expectation
                (useful for deterministic tests).

        Returns:
            Extra microseconds added to this request's service time.
        """
        if self.smt_enabled:
            return 0.0
        if utilization < 0.0:
            utilization = 0.0
        elif utilization > 1.0:
            utilization = 1.0
        intensity = self.run_intensity
        broad = utilization * intensity * self._broad_us
        probability = self._interference_scale * utilization * intensity
        if probability > 1.0:
            probability = 1.0
        mean = self._interference_mean_us
        if rng is None:
            return broad + probability * mean
        if rng.random() < probability:
            # mean * std_exp matches Generator.exponential(mean).
            return broad + mean * rng.standard_exponential()
        return broad
