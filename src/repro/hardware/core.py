"""A simulated CPU core that serializes event handling.

:class:`SimCore` is the composition point of the hardware model: it
combines the C-state governor, the frequency model, the uncore model
and the timer model under one core-occupancy timeline.  Workload
generators hand it "handle this event at time *t*, costing *w* us of
work at nominal frequency" and get back when the handling *finished* --
which is exactly the timestamp a point-of-measurement-in-generator
design records.

The finish time includes, in order:

1. queueing behind earlier events still being handled (a busy core),
2. C-state wake latency if the core was asleep,
3. a voltage/frequency ramp if the core woke from a deep state under a
   utilization-driven governor (legacy-DVFS transition, ~30 us [15]),
4. the uncore ramp penalty after long idle,
5. a thread wake / context switch if the event unblocks a thread,
6. a DVFS stall if the governor changed frequency at this boundary,
7. the work itself, scaled by the current core frequency.

A core created with ``polling=True`` models a busy-wait event loop
(the HDSearch client): it never sleeps, pays no wake or context-switch
costs, and its frequency governor sees 100% utilization.

Per-event accounting runs a few times per simulated request, so the
hot path (:meth:`SimCore.handle_event_finish_us`) returns only the
finish timestamp; :meth:`SimCore.handle_event` layers the full
:class:`CoreOccupancy` record on the same arithmetic for tests and
diagnostics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config.knobs import FrequencyGovernor, HardwareConfig
from repro.hardware.cstates import CStateGovernor
from repro.hardware.frequency import FrequencyModel
from repro.hardware.timer import TimerModel
from repro.hardware.uncore import UncoreModel
from repro.parameters import SkylakeParameters

#: Target residency at and beyond which a wake implies a voltage ramp.
_DEEP_SLEEP_RESIDENCY_US = 20.0


class CoreOccupancy:
    """Timeline record of one handled event.

    Attributes:
        arrival_us: when the event (packet, timer) arrived at the core.
        start_us: when the core actually began handling it.
        finish_us: when handling completed (the observable timestamp).
        wake_latency_us: C-state exit latency paid, if any.
        queue_wait_us: time spent waiting behind earlier events.
        work_us: actual execution time after frequency scaling.
        cstate: name of the C-state the core woke from.
        freq_ghz: core frequency during execution.
    """

    __slots__ = ("arrival_us", "start_us", "finish_us", "wake_latency_us",
                 "queue_wait_us", "work_us", "cstate", "freq_ghz")

    def __init__(self, arrival_us: float, start_us: float, finish_us: float,
                 wake_latency_us: float, queue_wait_us: float,
                 work_us: float, cstate: str, freq_ghz: float) -> None:
        self.arrival_us = arrival_us
        self.start_us = start_us
        self.finish_us = finish_us
        self.wake_latency_us = wake_latency_us
        self.queue_wait_us = queue_wait_us
        self.work_us = work_us
        self.cstate = cstate
        self.freq_ghz = freq_ghz

    @property
    def overhead_us(self) -> float:
        """Everything except the event's own work."""
        return (self.finish_us - self.arrival_us) - self.work_us

    def __eq__(self, other) -> bool:
        if not isinstance(other, CoreOccupancy):
            return NotImplemented
        return (self.arrival_us == other.arrival_us
                and self.start_us == other.start_us
                and self.finish_us == other.finish_us
                and self.wake_latency_us == other.wake_latency_us
                and self.queue_wait_us == other.queue_wait_us
                and self.work_us == other.work_us
                and self.cstate == other.cstate
                and self.freq_ghz == other.freq_ghz)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CoreOccupancy(arrival_us={self.arrival_us!r}, "
                f"start_us={self.start_us!r}, finish_us={self.finish_us!r}, "
                f"wake_latency_us={self.wake_latency_us!r}, "
                f"queue_wait_us={self.queue_wait_us!r}, "
                f"work_us={self.work_us!r}, cstate={self.cstate!r}, "
                f"freq_ghz={self.freq_ghz!r})")


class SimCore:
    """One core of a client or server machine.

    Events must be submitted in non-decreasing arrival order; the core
    maintains its own availability timeline and queues events that
    arrive while it is busy.

    Args:
        params: calibrated machine constants.
        config: the machine's hardware configuration.
        rng: random stream for governor prediction noise and timer
            slack; ``None`` makes the core fully deterministic.  A
            :class:`~repro.sim.sampling.BatchedStream` is accepted
            anywhere a generator is.
        polling: model a busy-wait loop that never idles.
        overhead_scale: run-level multiplicative factor on all overhead
            components (uncontrolled environment state; sampled once
            per run by the testbed).
        cstate_latency_limit_us: menu-governor latency tolerance; see
            :class:`~repro.hardware.cstates.CStateGovernor`.
    """

    def __init__(self, params: SkylakeParameters, config: HardwareConfig,
                 rng: Optional[np.random.Generator] = None,
                 polling: bool = False,
                 overhead_scale: float = 1.0,
                 cstate_latency_limit_us: Optional[float] = None) -> None:
        if overhead_scale <= 0:
            raise ValueError(
                f"overhead_scale must be positive, got {overhead_scale}"
            )
        self._params = params
        self._config = config
        self._rng = rng
        self.polling = bool(polling)
        self.overhead_scale = float(overhead_scale)
        self.cstates = CStateGovernor(
            params, config, latency_limit_us=cstate_latency_limit_us)
        self.frequency = FrequencyModel(params, config)
        self.uncore = UncoreModel(params, config)
        self.timer = TimerModel(params, config)
        self._available_at = 0.0
        self._last_arrival = 0.0
        self.events_handled = 0
        self.total_busy_us = 0.0
        self.total_wake_us = 0.0
        # Per-event constants hoisted off the hot path.
        self._thread_wake_us = (params.poll_wake_us if config.idle_poll
                                else params.context_switch_us)
        self._nominal_ghz = params.nominal_freq_ghz
        self._wake_dvfs_ramp_us = params.wake_dvfs_ramp_us
        self._governor_ramps = (
            config.frequency_governor is not FrequencyGovernor.PERFORMANCE)

    # ------------------------------------------------------------------
    @property
    def available_at(self) -> float:
        """Simulated time at which the core next becomes free."""
        return self._available_at

    def idle_gap_before(self, arrival_us: float) -> float:
        """Idle period the core would have had before *arrival_us*."""
        return max(0.0, arrival_us - self._available_at)

    def _thread_wake_cost(self) -> float:
        return self._thread_wake_us

    # ------------------------------------------------------------------
    def handle_event_finish_us(self, arrival_us: float,
                               work_us_nominal: float,
                               wakes_thread: bool = True) -> float:
        """Handle an event; return only the finish timestamp.

        The request hot path: identical accounting and float
        arithmetic to :meth:`handle_event`, without materializing the
        :class:`CoreOccupancy` record.
        """
        if arrival_us < self._last_arrival - 1e-9:
            raise ValueError(
                f"event at {arrival_us} precedes earlier arrival "
                f"{self._last_arrival}"
            )
        self._last_arrival = arrival_us

        available = self._available_at
        gap = available - arrival_us
        if gap > 0.0:
            queue_wait = gap
            idle_gap = 0.0
        else:
            queue_wait = 0.0
            idle_gap = -gap if gap < 0.0 else 0.0
        start = arrival_us + queue_wait

        wake_latency = 0.0
        dvfs_ramp = 0.0
        uncore_penalty = 0.0
        ctx = 0.0

        frequency = self.frequency
        if self.polling:
            # A busy-wait loop burned the gap spinning: no sleep, no
            # wake path, and the governor sees the spin as busy time.
            if idle_gap > 0:
                frequency.account_busy(idle_gap)
        elif queue_wait == 0.0:
            wake_latency, state = self.cstates.wake_and_state(
                idle_gap, self._rng)
            if (wake_latency > 0.0
                    and state.target_residency_us >= _DEEP_SLEEP_RESIDENCY_US
                    and self._governor_ramps):
                dvfs_ramp = self._wake_dvfs_ramp_us
            uncore_penalty = self.uncore.wake_penalty_us(idle_gap)
            if wakes_thread:
                ctx = self._thread_wake_us

        freq, stall = frequency.evaluate_fast(start)
        if self.polling:
            # A busy-wait loop absorbs the transition while spinning;
            # it never lands on an event's observable path.
            stall = 0.0

        overhead = (wake_latency + dvfs_ramp + uncore_penalty + ctx
                    + stall) * self.overhead_scale
        work = work_us_nominal * (self._nominal_ghz / freq)
        finish = start + overhead + work

        busy = finish - start
        frequency.account_busy(busy)
        self.total_busy_us += busy
        self.total_wake_us += wake_latency
        self.events_handled += 1
        self._available_at = finish
        return finish

    def handle_event(self, arrival_us: float, work_us_nominal: float,
                     wakes_thread: bool = True) -> CoreOccupancy:
        """Handle an event arriving at *arrival_us*.

        Args:
            arrival_us: event arrival time; must not precede earlier
                arrivals (events may arrive while the core is busy).
            work_us_nominal: CPU work, calibrated at nominal frequency.
            wakes_thread: whether handling requires scheduling a blocked
                thread in (block-wait designs: yes; busy-wait: no).

        Returns:
            The :class:`CoreOccupancy` record, whose ``finish_us`` is
            the earliest time software could observe the event.

        Mirrors :meth:`handle_event_finish_us` exactly (same branches,
        same float expressions); a change to one must be made to both.
        ``tests/test_sampling_batched.py`` pins the two in lockstep.
        """
        if arrival_us < self._last_arrival - 1e-9:
            raise ValueError(
                f"event at {arrival_us} precedes earlier arrival "
                f"{self._last_arrival}"
            )
        self._last_arrival = arrival_us

        queue_wait = max(0.0, self._available_at - arrival_us)
        idle_gap = max(0.0, arrival_us - self._available_at)
        start = arrival_us + queue_wait

        wake_latency = 0.0
        dvfs_ramp = 0.0
        uncore_penalty = 0.0
        ctx = 0.0
        cstate_name = "C0"

        if self.polling:
            # A busy-wait loop burned the gap spinning: no sleep, no
            # wake path, and the governor sees the spin as busy time.
            if idle_gap > 0:
                self.frequency.account_busy(idle_gap)
        elif queue_wait == 0.0:
            wake_latency, state = self.cstates.wake_and_state(
                idle_gap, self._rng)
            cstate_name = state.name
            if (wake_latency > 0.0
                    and state.target_residency_us >= _DEEP_SLEEP_RESIDENCY_US
                    and self._governor_ramps):
                dvfs_ramp = self._wake_dvfs_ramp_us
            uncore_penalty = self.uncore.wake_penalty_us(idle_gap)
            if wakes_thread:
                ctx = self._thread_wake_us

        freq, stall = self.frequency.evaluate_fast(start)
        if self.polling:
            # A busy-wait loop absorbs the transition while spinning;
            # it never lands on an event's observable path.
            stall = 0.0

        overhead = (wake_latency + dvfs_ramp + uncore_penalty + ctx
                    + stall) * self.overhead_scale
        work = work_us_nominal * (self._nominal_ghz / freq)
        finish = start + overhead + work

        busy = finish - start
        self.frequency.account_busy(busy)
        self.total_busy_us += busy
        self.total_wake_us += wake_latency
        self.events_handled += 1
        self._available_at = finish

        return CoreOccupancy(
            arrival_us=arrival_us,
            start_us=start,
            finish_us=finish,
            wake_latency_us=wake_latency,
            queue_wait_us=queue_wait,
            work_us=work,
            cstate=cstate_name,
            freq_ghz=freq,
        )

    # ------------------------------------------------------------------
    def timed_sleep_until(self, target_us: float, now_us: float) -> float:
        """Return when a thread sleeping until *target_us* actually runs.

        Combines timer slack (late expiry) with run-level environment
        scaling.  Used by block-wait generators for their send timing.
        """
        if target_us < now_us:
            target_us = now_us
        overshoot = self.timer.sleep_overshoot_us(self._rng)
        return target_us + overshoot * self.overhead_scale

    def utilization(self, horizon_us: float) -> float:
        """Busy fraction over the first *horizon_us* of simulated time."""
        if horizon_us <= 0:
            return 0.0
        return min(1.0, self.total_busy_us / horizon_us)
