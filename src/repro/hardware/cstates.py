"""C-state selection and wake-up latency (paper Section IV-C, "C-states").

When a core goes idle the cpuidle *menu*-style governor predicts the
idle period and picks the deepest enabled C-state whose target
residency fits the prediction.  Waking from that state costs its exit
latency, which lands directly on the measurement path of a block-wait
workload generator: the response is in the NIC, but the generator
cannot timestamp it until the core is back in C0.

The paper quotes 2 us - 200 us for this transition; our Skylake table
(C1 2 us, C1E 10 us, C6 133 us) sits inside that range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.config.knobs import HardwareConfig
from repro.parameters import CStateSpec, SkylakeParameters


@dataclass(frozen=True)
class IdleDecision:
    """Outcome of one idle period.

    Attributes:
        state: the C-state the core slept in.
        wake_latency_us: exit latency paid on the wake-up path.
        residency_us: how long the core was resident in the state.
    """

    state: CStateSpec
    wake_latency_us: float
    residency_us: float


class CStateGovernor:
    """Menu-governor-like C-state selection for a simulated core.

    The real menu governor predicts idle length from recent history and
    can mispredict.  We model that by perturbing the actual gap with a
    small multiplicative error before the table lookup, which produces
    the occasional too-deep/too-shallow pick that contributes to LP
    run-to-run variability.

    ``latency_limit_us`` models menu's latency-tolerance heuristics
    (the performance multiplier and IO-wait correction, plus PM-QoS
    requests from busy NIC interrupt sources): cores running network
    event loops are effectively kept out of states whose exit latency
    exceeds the tolerance, even during long gaps.
    """

    #: Std-dev of the multiplicative prediction error.
    PREDICTION_NOISE = 0.25

    def __init__(self, params: SkylakeParameters,
                 config: HardwareConfig,
                 latency_limit_us: Optional[float] = None) -> None:
        self._params = params
        self._config = config
        table = [
            spec for spec in params.cstate_table()
            if spec.name in config.enabled_cstates
            and (latency_limit_us is None
                 or spec.exit_latency_us <= latency_limit_us)
        ]
        if not table:
            # The limit excluded everything but C0 must always remain.
            table = [params.cstate_table()[0]]
        # Deepest-last ordering is guaranteed by the parameters module.
        self._enabled: Sequence[CStateSpec] = tuple(table)
        self._poll = config.idle_poll
        #: Tick period that bounds sleep depth on non-tickless kernels.
        self._tick_limit_us: Optional[float] = (
            None if config.tickless else 4_000.0)

    @property
    def enabled_states(self) -> Sequence[CStateSpec]:
        """The C-states this governor may select, shallowest first."""
        return self._enabled

    def select(self, idle_gap_us: float,
               rng: Optional[np.random.Generator] = None) -> IdleDecision:
        """Decide the sleep state for an idle period of *idle_gap_us*.

        Args:
            idle_gap_us: the actual length of the idle period.
            rng: optional generator for prediction noise; without it the
                prediction is exact (useful for deterministic tests).

        Returns:
            The :class:`IdleDecision` including the wake latency the
            next event must absorb.
        """
        if idle_gap_us < 0:
            idle_gap_us = 0.0
        if self._poll or not self._enabled:
            c0 = self._params.cstate_table()[0]
            return IdleDecision(c0, 0.0, idle_gap_us)

        predicted = idle_gap_us
        if rng is not None and idle_gap_us > 0:
            noise = rng.normal(loc=1.0, scale=self.PREDICTION_NOISE)
            predicted = idle_gap_us * max(0.0, noise)
        if self._tick_limit_us is not None:
            predicted = min(predicted, self._tick_limit_us)

        chosen = self._enabled[0]
        for spec in self._enabled:
            if spec.target_residency_us <= predicted:
                chosen = spec
        # A core cannot pay more wake latency than it slept: if the gap
        # ends before the entry completes the exit is proportionally
        # cheaper (entry aborted early).
        wake = min(chosen.exit_latency_us, max(idle_gap_us, 0.0))
        return IdleDecision(chosen, wake, idle_gap_us)
