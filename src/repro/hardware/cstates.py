"""C-state selection and wake-up latency (paper Section IV-C, "C-states").

When a core goes idle the cpuidle *menu*-style governor predicts the
idle period and picks the deepest enabled C-state whose target
residency fits the prediction.  Waking from that state costs its exit
latency, which lands directly on the measurement path of a block-wait
workload generator: the response is in the NIC, but the generator
cannot timestamp it until the core is back in C0.

The paper quotes 2 us - 200 us for this transition; our Skylake table
(C1 2 us, C1E 10 us, C6 133 us) sits inside that range.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.config.knobs import HardwareConfig
from repro.parameters import CStateSpec, SkylakeParameters


class IdleDecision:
    """Outcome of one idle period.

    Attributes:
        state: the C-state the core slept in.
        wake_latency_us: exit latency paid on the wake-up path.
        residency_us: how long the core was resident in the state.
    """

    __slots__ = ("state", "wake_latency_us", "residency_us")

    def __init__(self, state: CStateSpec, wake_latency_us: float,
                 residency_us: float) -> None:
        self.state = state
        self.wake_latency_us = wake_latency_us
        self.residency_us = residency_us

    def __eq__(self, other) -> bool:
        if not isinstance(other, IdleDecision):
            return NotImplemented
        return (self.state == other.state
                and self.wake_latency_us == other.wake_latency_us
                and self.residency_us == other.residency_us)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IdleDecision(state={self.state!r}, "
                f"wake_latency_us={self.wake_latency_us!r}, "
                f"residency_us={self.residency_us!r})")


class CStateGovernor:
    """Menu-governor-like C-state selection for a simulated core.

    The real menu governor predicts idle length from recent history and
    can mispredict.  We model that by perturbing the actual gap with a
    small multiplicative error before the table lookup, which produces
    the occasional too-deep/too-shallow pick that contributes to LP
    run-to-run variability.

    ``latency_limit_us`` models menu's latency-tolerance heuristics
    (the performance multiplier and IO-wait correction, plus PM-QoS
    requests from busy NIC interrupt sources): cores running network
    event loops are effectively kept out of states whose exit latency
    exceeds the tolerance, even during long gaps.
    """

    #: Std-dev of the multiplicative prediction error.
    PREDICTION_NOISE = 0.25

    def __init__(self, params: SkylakeParameters,
                 config: HardwareConfig,
                 latency_limit_us: Optional[float] = None) -> None:
        self._params = params
        self._config = config
        table = [
            spec for spec in params.cstate_table()
            if spec.name in config.enabled_cstates
            and (latency_limit_us is None
                 or spec.exit_latency_us <= latency_limit_us)
        ]
        if not table:
            # The limit excluded everything but C0 must always remain.
            table = [params.cstate_table()[0]]
        # Deepest-last ordering is guaranteed by the parameters module.
        self._enabled: Sequence[CStateSpec] = tuple(table)
        self._poll = config.idle_poll
        self._c0 = params.cstate_table()[0]
        #: (target_residency_us, spec) pairs, locals-friendly for the
        #: per-request selection loop.
        self._table: Tuple[Tuple[float, CStateSpec], ...] = tuple(
            (spec.target_residency_us, spec) for spec in table)
        #: Tick period that bounds sleep depth on non-tickless kernels.
        self._tick_limit_us: Optional[float] = (
            None if config.tickless else 4_000.0)

    @property
    def enabled_states(self) -> Sequence[CStateSpec]:
        """The C-states this governor may select, shallowest first."""
        return self._enabled

    def wake_and_state(self, idle_gap_us: float,
                       rng=None) -> Tuple[float, CStateSpec]:
        """Hot-path form of :meth:`select`: no decision record.

        Returns ``(wake_latency_us, state)`` for an idle period of
        *idle_gap_us*.  Same draw sequence and float arithmetic as
        :meth:`select` -- the two are interchangeable per call.
        """
        if idle_gap_us < 0:
            idle_gap_us = 0.0
        if self._poll:
            return (0.0, self._c0)

        predicted = idle_gap_us
        if rng is not None and idle_gap_us > 0:
            # loc + scale * z matches Generator.normal(loc, scale)
            # bit-for-bit while skipping its kwargs dispatch; rng may
            # be a Generator or a BatchedStream.
            noise = 1.0 + self.PREDICTION_NOISE * rng.standard_normal()
            if noise < 0.0:
                noise = 0.0
            predicted = idle_gap_us * noise
        tick_limit = self._tick_limit_us
        if tick_limit is not None and predicted > tick_limit:
            predicted = tick_limit

        table = self._table
        chosen = table[0][1]
        for target_residency, spec in table:
            if target_residency <= predicted:
                chosen = spec
        # A core cannot pay more wake latency than it slept: if the gap
        # ends before the entry completes the exit is proportionally
        # cheaper (entry aborted early).
        wake = chosen.exit_latency_us
        if wake > idle_gap_us:
            wake = idle_gap_us
        return (wake, chosen)

    def select(self, idle_gap_us: float,
               rng: Optional[np.random.Generator] = None) -> IdleDecision:
        """Decide the sleep state for an idle period of *idle_gap_us*.

        Args:
            idle_gap_us: the actual length of the idle period.
            rng: optional generator for prediction noise; without it the
                prediction is exact (useful for deterministic tests).

        Returns:
            The :class:`IdleDecision` including the wake latency the
            next event must absorb.
        """
        if idle_gap_us < 0:
            idle_gap_us = 0.0
        wake, chosen = self.wake_and_state(idle_gap_us, rng)
        return IdleDecision(chosen, wake, idle_gap_us)
