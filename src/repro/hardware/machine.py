"""A machine: a set of cores under one hardware configuration.

Client machines in the testbed dedicate one generator core per
machine to event handling (mirroring how mutilate/wrk2 pin their event
loops); server machines expose a worker pool whose size depends on the
SMT knob.  :class:`Machine` owns the per-machine hardware model
instances and the per-machine random streams.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.config.knobs import HardwareConfig
from repro.config.validate import validate_config
from repro.hardware.core import SimCore
from repro.hardware.smt import SmtModel
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters


class Machine:
    """A client or server machine of the simulated test cluster."""

    def __init__(self, name: str, config: HardwareConfig,
                 physical_cores: int = 20,
                 params: SkylakeParameters = DEFAULT_PARAMETERS,
                 rng: Optional[np.random.Generator] = None) -> None:
        if physical_cores <= 0:
            raise ValueError(
                f"physical_cores must be positive, got {physical_cores}"
            )
        self.name = str(name)
        self.config = validate_config(config)
        self.params = params
        self.physical_cores = int(physical_cores)
        self.smt = SmtModel(params, config.smt)
        self._rng = rng
        self._cores: List[SimCore] = []

    # ------------------------------------------------------------------
    @property
    def logical_cpus(self) -> int:
        """Hardware threads visible to the OS on this machine."""
        return self.smt.logical_threads(self.physical_cores)

    def new_core(self, polling: bool = False,
                 overhead_scale: float = 1.0,
                 cstate_latency_limit_us=None) -> SimCore:
        """Allocate one more simulated core on this machine.

        Args:
            polling: create the core in busy-wait mode (see
                :class:`~repro.hardware.core.SimCore`).
            overhead_scale: run-level environment factor for the core.
            cstate_latency_limit_us: menu latency tolerance for this
                core's idle decisions.

        Raises:
            ValueError: if all physical cores are already allocated.
        """
        if len(self._cores) >= self.physical_cores:
            raise ValueError(
                f"{self.name}: all {self.physical_cores} cores allocated"
            )
        core = SimCore(self.params, self.config, rng=self._rng,
                       polling=polling, overhead_scale=overhead_scale,
                       cstate_latency_limit_us=cstate_latency_limit_us)
        self._cores.append(core)
        return core

    @property
    def cores(self) -> List[SimCore]:
        """Cores allocated so far."""
        return list(self._cores)

    def describe(self) -> str:
        """One-line summary used by reports."""
        return (
            f"{self.name}: {self.physical_cores}C/"
            f"{self.logical_cpus}T, {self.config.describe()}"
        )
