"""Little's law helpers.

The paper's synthetic-workload study sizes its load points with
Little's law: only rates whose implied concurrency ``L = lambda * W``
stays below the worker count are examined, so the station never
saturates.
"""

from __future__ import annotations

from typing import List

from repro.errors import StatisticsError
from repro.units import SECOND


def concurrency(qps: float, latency_us: float) -> float:
    """Average requests in flight: ``L = lambda * W`` (Little's law)."""
    if qps < 0 or latency_us < 0:
        raise StatisticsError("qps and latency must be >= 0")
    return qps * (latency_us / SECOND)


def max_qps_for_concurrency(latency_us: float, workers: int) -> float:
    """Highest rate keeping average concurrency below *workers*."""
    if latency_us <= 0:
        raise StatisticsError(
            f"latency must be positive, got {latency_us}"
        )
    if workers <= 0:
        raise StatisticsError(f"workers must be positive, got {workers}")
    return workers * SECOND / latency_us


def feasible_qps(candidate_qps: List[float], service_us: float,
                 workers: int) -> List[float]:
    """Filter *candidate_qps* to those whose implied concurrency fits.

    This is exactly how the paper picks the synthetic workload's QPS
    points: "examine only the QPS where the concurrency is less than
    the number of available cores for all possible values of the new
    parameter".
    """
    limit = max_qps_for_concurrency(service_us, workers)
    return [qps for qps in candidate_qps if qps < limit]
