"""How many repetitions does an experiment need? (Table IV)

Two methods, exactly as the paper uses them:

* **Parametric** (Jain [18], equation 3): assumes normal samples,
  ``n = (100 * z * s / (r * x))^2`` with z the confidence-level
  variate, s the standard deviation, x the mean, and r the target
  error percentage.
* **CONFIRM** (Maricq et al. [29]): non-parametric; repeatedly draws
  random subsets, estimates median CIs, and grows the subset until the
  averaged CI bounds are within the error target.  Uses c=200 subset
  draws and a minimum subset size of 10 (smaller subsets cannot
  estimate non-parametric CIs reliably).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import InsufficientSamplesError, StatisticsError
from repro.stats.ci import nonparametric_median_ci, z_score
from repro.stats.descriptive import _as_clean_array

#: CONFIRM's subset-draw count (the original paper's c).
CONFIRM_DRAWS = 200
#: CONFIRM's minimum subset size (the original paper's s >= 10).
CONFIRM_MIN_SUBSET = 10


def parametric_repetitions(samples: Sequence[float],
                           error_pct: float = 1.0,
                           confidence: float = 0.95) -> int:
    """Iterations needed per Jain's formula (paper equation 3).

    Args:
        samples: pilot measurements (one per run).
        error_pct: acceptable error r as a percentage of the mean.
        confidence: confidence level for the z variate.

    Returns:
        The iteration count, rounded up and at least 1.
    """
    if error_pct <= 0:
        raise StatisticsError(
            f"error_pct must be positive, got {error_pct}"
        )
    array = _as_clean_array(samples, 2, "parametric repetitions")
    mean = float(np.mean(array))
    if mean == 0:
        raise StatisticsError(
            "parametric repetitions undefined for zero mean"
        )
    std = float(np.std(array, ddof=1))
    z = z_score(confidence)
    n = (100.0 * z * std / (error_pct * abs(mean))) ** 2
    return max(1, int(math.ceil(n)))


def confirm_repetitions(samples: Sequence[float],
                        error: float = 0.01,
                        confidence: float = 0.95,
                        draws: int = CONFIRM_DRAWS,
                        min_subset: int = CONFIRM_MIN_SUBSET,
                        rng: Optional[np.random.Generator] = None,
                        ) -> Optional[int]:
    """Iterations needed per the CONFIRM method.

    For each candidate subset size s (from *min_subset* up to the
    sample count) the method draws *draws* random subsets, computes
    the non-parametric median CI of each, averages the lower and upper
    bounds, and accepts s when both averaged bounds are within
    *error* of the full-sample median.

    Returns:
        The accepted subset size, or ``None`` when even the full
        sample does not reach the target (Table IV prints this as
        ``> n``).
    """
    if not 0.0 < error < 1.0:
        raise StatisticsError(f"error must be in (0, 1), got {error}")
    if draws < 1:
        raise StatisticsError(f"draws must be >= 1, got {draws}")
    array = _as_clean_array(samples, min_subset, "CONFIRM")
    if rng is None:
        rng = np.random.default_rng(0)
    reference_median = float(np.median(array))
    if reference_median == 0:
        raise StatisticsError("CONFIRM undefined for zero median")

    for subset_size in range(min_subset, array.size + 1):
        lower_bounds = np.empty(draws)
        upper_bounds = np.empty(draws)
        usable = True
        for draw in range(draws):
            subset = rng.choice(array, size=subset_size, replace=False)
            try:
                interval = nonparametric_median_ci(subset, confidence)
            except InsufficientSamplesError:
                usable = False
                break
            lower_bounds[draw] = interval.lower
            upper_bounds[draw] = interval.upper
        if not usable:
            continue
        mean_lower = float(np.mean(lower_bounds))
        mean_upper = float(np.mean(upper_bounds))
        lower_error = abs(reference_median - mean_lower) / abs(
            reference_median)
        upper_error = abs(mean_upper - reference_median) / abs(
            reference_median)
        if lower_error <= error and upper_error <= error:
            return subset_size
    return None
