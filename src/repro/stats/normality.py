"""Normality testing (Shapiro-Wilk) and frequency charts.

The paper tests every configuration's 50 run-samples with the
Shapiro-Wilk test [37] at a 5% significance level before choosing
between the parametric and CONFIRM repetition-count methods (Fig. 8,
Table IV), and illustrates a skewed high-QPS configuration with a
frequency chart (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import StatisticsError
from repro.stats.descriptive import _as_clean_array


@dataclass(frozen=True)
class NormalityResult:
    """Outcome of one Shapiro-Wilk test.

    Attributes:
        statistic: the W statistic.
        p_value: probability of the data under the null (normality).
        alpha: significance level used for the verdict.
        normal: True when the null is *not* rejected (p >= alpha).
    """

    statistic: float
    p_value: float
    alpha: float
    normal: bool

    @property
    def verdict(self) -> str:
        """``"pass"`` (normal) or ``"fail"`` -- Table IV's wording."""
        return "pass" if self.normal else "fail"


def shapiro_wilk(samples: Sequence[float],
                 alpha: float = 0.05) -> NormalityResult:
    """Run the Shapiro-Wilk test on *samples*.

    Raises:
        InsufficientSamplesError: fewer than 3 samples.
        StatisticsError: invalid alpha or degenerate input.
    """
    if not 0.0 < alpha < 1.0:
        raise StatisticsError(f"alpha must be in (0, 1), got {alpha}")
    array = _as_clean_array(samples, 3, "Shapiro-Wilk test")
    if np.ptp(array) == 0.0:
        # All samples identical: scipy raises; the data is trivially
        # non-normal (a point mass), so report a hard fail.
        return NormalityResult(
            statistic=0.0, p_value=0.0, alpha=alpha, normal=False)
    statistic, p_value = scipy_stats.shapiro(array)
    return NormalityResult(
        statistic=float(statistic),
        p_value=float(p_value),
        alpha=alpha,
        normal=bool(p_value >= alpha),
    )


def frequency_chart(samples: Sequence[float],
                    num_bins: int = 17) -> List[Tuple[str, int, bool]]:
    """Build a Fig. 9-style frequency chart.

    Bins the samples into ``num_bins`` equal-width bins plus a trailing
    ``"More"`` overflow bin (mirroring the paper's chart, whose last
    bin is labelled "More"), marking the bin containing the median.

    Returns:
        ``(label, count, contains_median)`` triples in bin order.
    """
    if num_bins < 2:
        raise StatisticsError(f"num_bins must be >= 2, got {num_bins}")
    array = _as_clean_array(samples, 2, "frequency chart")
    median = float(np.median(array))
    low = float(np.min(array))
    # The main chart covers min..median*2-min; the rest goes to "More",
    # which reproduces the paper's heavily skewed presentation.
    high = max(median + (median - low), low + 1e-9)
    edges = np.linspace(low, high, num_bins)
    rows: List[Tuple[str, int, bool]] = []
    for index in range(len(edges) - 1):
        left, right = edges[index], edges[index + 1]
        is_last_regular = index == len(edges) - 2
        if is_last_regular:
            mask = (array >= left) & (array <= right)
        else:
            mask = (array >= left) & (array < right)
        count = int(np.count_nonzero(mask))
        contains_median = left <= median <= right
        rows.append((f"{left:.0f}", count, contains_median))
    overflow = int(np.count_nonzero(array > high))
    rows.append(("More", overflow, False))
    return rows


def render_frequency_chart(samples: Sequence[float],
                           num_bins: int = 17, width: int = 40) -> str:
    """ASCII rendering of :func:`frequency_chart` (Fig. 9)."""
    rows = frequency_chart(samples, num_bins)
    peak = max(count for _, count, _ in rows) or 1
    lines = []
    for label, count, has_median in rows:
        bar = "#" * int(round(width * count / peak))
        marker = " <-- median" if has_median else ""
        lines.append(f"{label:>8} | {bar:<{width}} {count:>3}{marker}")
    return "\n".join(lines)
