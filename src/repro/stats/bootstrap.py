"""Percentile-bootstrap confidence intervals.

A third CI option next to the parametric (Student-t) and
order-statistic (paper eqs. 1-2) intervals.  The bootstrap makes no
distributional assumption *and* works for any statistic -- including
the 99th percentile, whose order-statistic CI needs far more samples
than 50 runs provide.  Useful as a cross-check of the paper's CIs in
the ~half of configurations that fail Shapiro-Wilk.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import StatisticsError
from repro.stats.ci import ConfidenceInterval
from repro.stats.descriptive import _as_clean_array

#: Default resample count.
DEFAULT_RESAMPLES = 2_000


def bootstrap_ci(samples: Sequence[float],
                 statistic: Optional[Callable[[np.ndarray], float]] = None,
                 confidence: float = 0.95,
                 resamples: int = DEFAULT_RESAMPLES,
                 rng: Optional[np.random.Generator] = None
                 ) -> ConfidenceInterval:
    """Percentile-bootstrap CI of *statistic* over *samples*.

    The default (median) statistic runs fully vectorized: one
    ``(resamples, n)`` index matrix and a single axis-aware
    ``np.median`` replace the per-resample Python loop, which makes
    campaign-scale CI computation ~50x cheaper.  A custom *statistic*
    callable keeps the per-resample fallback.

    Args:
        samples: the observed sample set.
        statistic: array -> float; defaults to the median.
        confidence: two-sided confidence level.
        resamples: bootstrap iterations.
        rng: randomness; a fixed default keeps results reproducible.

    Raises:
        StatisticsError: on invalid confidence/resamples.
    """
    if not 0.0 < confidence < 1.0:
        raise StatisticsError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if resamples < 100:
        raise StatisticsError(
            f"resamples must be >= 100, got {resamples}"
        )
    array = _as_clean_array(samples, 2, "bootstrap CI")
    if rng is None:
        rng = np.random.default_rng(0)

    n = array.size
    if statistic is None:
        # Vectorized fast path: all resamples in one index matrix.
        point = float(np.median(array))
        indices = rng.integers(0, n, size=(resamples, n))
        estimates = np.median(array[indices], axis=1)
    else:
        point = float(statistic(array))
        estimates = np.empty(resamples)
        for index in range(resamples):
            resample = array[rng.integers(0, n, size=n)]
            estimates[index] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    lower = float(np.quantile(estimates, alpha))
    upper = float(np.quantile(estimates, 1.0 - alpha))
    # Guard against pathological statistics: keep the point inside.
    lower = min(lower, point)
    upper = max(upper, point)
    return ConfidenceInterval(
        point=point, lower=lower, upper=upper,
        confidence=confidence, kind="bootstrap",
    )


def bootstrap_median_ci(samples: Sequence[float],
                        confidence: float = 0.95,
                        rng: Optional[np.random.Generator] = None
                        ) -> ConfidenceInterval:
    """Bootstrap CI of the median (drop-in for the eq. 1-2 CI)."""
    return bootstrap_ci(samples, confidence=confidence, rng=rng)


def bootstrap_p99_ci(samples: Sequence[float],
                     confidence: float = 0.95,
                     rng: Optional[np.random.Generator] = None
                     ) -> ConfidenceInterval:
    """Bootstrap CI of the 99th percentile of the sample set."""
    return bootstrap_ci(
        samples,
        statistic=lambda values: float(np.percentile(values, 99)),
        confidence=confidence, rng=rng)
