"""Confidence intervals: parametric (mean) and non-parametric (median).

The paper's equations 1-2 give the order-statistic indices bounding a
non-parametric CI on the **median**::

    lower = floor( (n - z*sqrt(n)) / 2 )
    upper = ceil( 1 + (n + z*sqrt(n)) / 2 )

computed on the sorted sample (1-based indices).  Following the
paper (and Le Boudec [25]), the median must lie inside the bounds and
two summaries are declared different only when their CIs do not
overlap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import InsufficientSamplesError, StatisticsError
from repro.stats.descriptive import _as_clean_array

#: Standard scores for common confidence levels.
Z_SCORES = {0.90: 1.6449, 0.95: 1.96, 0.99: 2.5758}


def z_score(confidence: float) -> float:
    """Standard normal quantile for a two-sided *confidence* level."""
    if not 0.0 < confidence < 1.0:
        raise StatisticsError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    known = Z_SCORES.get(round(confidence, 2))
    if known is not None:
        return known
    return float(scipy_stats.norm.ppf(0.5 + confidence / 2.0))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A confidence interval around a point estimate.

    Attributes:
        point: the estimate (median or mean).
        lower: lower bound.
        upper: upper bound.
        confidence: the confidence level, e.g. 0.95.
        kind: ``"nonparametric-median"`` or ``"parametric-mean"``.
    """

    point: float
    lower: float
    upper: float
    confidence: float
    kind: str

    def __post_init__(self) -> None:
        if not self.lower <= self.upper:
            raise StatisticsError(
                f"CI bounds inverted: [{self.lower}, {self.upper}]"
            )

    @property
    def width(self) -> float:
        """Absolute CI width."""
        return self.upper - self.lower

    def relative_error(self) -> float:
        """Half-width as a fraction of the point estimate."""
        if self.point == 0:
            return math.inf
        return (self.width / 2.0) / abs(self.point)

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """Whether two intervals overlap (cannot be distinguished)."""
        return self.lower <= other.upper and other.lower <= self.upper

    def format(self, unit: str = "") -> str:
        """Readable rendering, e.g. ``"20.00 [19.80, 20.20] us"``."""
        suffix = f" {unit}" if unit else ""
        return (f"{self.point:.2f} [{self.lower:.2f}, "
                f"{self.upper:.2f}]{suffix}")


def nonparametric_median_ci(samples: Sequence[float],
                            confidence: float = 0.95
                            ) -> ConfidenceInterval:
    """Non-parametric CI on the median (paper equations 1 and 2).

    Raises:
        InsufficientSamplesError: when the bound indices fall outside
            the sample (too few samples for the confidence level).
    """
    array = np.sort(_as_clean_array(samples, 2, "nonparametric CI"))
    n = array.size
    z = z_score(confidence)
    lower_rank = math.floor((n - z * math.sqrt(n)) / 2.0)
    upper_rank = math.ceil(1.0 + (n + z * math.sqrt(n)) / 2.0)
    if lower_rank < 1 or upper_rank > n:
        raise InsufficientSamplesError(
            needed=math.ceil(z * z) + 1, got=n,
            what=f"nonparametric {confidence:.0%} CI",
        )
    # Ranks are 1-based order statistics.
    lower = float(array[lower_rank - 1])
    upper = float(array[upper_rank - 1])
    median = float(np.median(array))
    # Guard against degenerate rounding: the median must be inside.
    lower = min(lower, median)
    upper = max(upper, median)
    return ConfidenceInterval(
        point=median, lower=lower, upper=upper,
        confidence=confidence, kind="nonparametric-median",
    )


def parametric_mean_ci(samples: Sequence[float],
                       confidence: float = 0.95) -> ConfidenceInterval:
    """Student-t CI on the mean (assumes normally distributed samples)."""
    array = _as_clean_array(samples, 2, "parametric CI")
    n = array.size
    mean = float(np.mean(array))
    sem = float(np.std(array, ddof=1)) / math.sqrt(n)
    t = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ConfidenceInterval(
        point=mean, lower=mean - t * sem, upper=mean + t * sem,
        confidence=confidence, kind="parametric-mean",
    )


def intervals_overlap(first: ConfidenceInterval,
                      second: ConfidenceInterval) -> bool:
    """Convenience wrapper over :meth:`ConfidenceInterval.overlaps`."""
    return first.overlaps(second)
