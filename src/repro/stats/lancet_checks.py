"""Lancet-style sample quality checks (related work [24]).

Lancet self-validates its measurements with statistical tests; the
paper lists three and we provide all of them so an experiment built on
this library can run the same hygiene checks:

* **Anderson-Darling** -- does the request inter-arrival stream match
  the intended (exponential) distribution?  A client whose block-wait
  timing disrupts sends fails this check.
* **Augmented Dickey-Fuller (simplified)** -- are the per-run samples
  stationary (no drift across the experiment)?
* **Spearman lag test** -- are successive samples independent
  (rank correlation with the lagged series ~ 0)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import StatisticsError
from repro.stats.descriptive import _as_clean_array


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one hygiene check."""

    name: str
    passed: bool
    statistic: float
    detail: str

    def format_row(self) -> str:
        """One printable line."""
        verdict = "PASS" if self.passed else "FAIL"
        return f"{self.name:<28} {verdict}  {self.detail}"


def anderson_darling_exponential(gaps_us: Sequence[float],
                                 significance_pct: float = 5.0
                                 ) -> CheckResult:
    """Test whether inter-arrival gaps are exponential.

    Args:
        gaps_us: observed gaps between consecutive sends.
        significance_pct: significance level (scipy offers 15/10/5/2.5/1).
    """
    array = _as_clean_array(gaps_us, 8, "Anderson-Darling")
    if np.any(array < 0):
        raise StatisticsError("gaps must be non-negative")
    result = scipy_stats.anderson(array, dist="expon")
    levels = list(result.significance_level)
    if significance_pct not in levels:
        raise StatisticsError(
            f"significance {significance_pct} not offered; "
            f"choose from {levels}"
        )
    critical = result.critical_values[levels.index(significance_pct)]
    passed = bool(result.statistic < critical)
    return CheckResult(
        name="anderson-darling (expon)",
        passed=passed,
        statistic=float(result.statistic),
        detail=(f"A2={result.statistic:.3f} vs critical "
                f"{critical:.3f} @ {significance_pct}%"),
    )


def dickey_fuller_stationarity(samples: Sequence[float],
                               alpha: float = 0.05) -> CheckResult:
    """A simplified (lag-1, demeaned) Dickey-Fuller test.

    Demeans the series (the with-constant variant) and regresses the
    first difference on the lagged level; a significantly negative
    coefficient rejects the unit root, i.e. the series is stationary.
    Uses the with-constant DF critical values (-2.86 at 5%, -3.43
    at 1%).
    """
    array = _as_clean_array(samples, 10, "Dickey-Fuller")
    if np.ptp(array) == 0.0:
        # A constant series is trivially stationary.
        return CheckResult(
            name="dickey-fuller (stationarity)", passed=True,
            statistic=float("-inf"), detail="constant series")
    centered = array - float(np.mean(array))
    lagged = centered[:-1]
    diff = np.diff(centered)
    denominator = float(np.dot(lagged, lagged))
    if denominator == 0:
        return CheckResult(
            name="dickey-fuller (stationarity)", passed=True,
            statistic=float("-inf"), detail="degenerate series")
    gamma = float(np.dot(lagged, diff)) / denominator
    residuals = diff - gamma * lagged
    dof = max(1, len(diff) - 1)
    sigma2 = float(np.dot(residuals, residuals)) / dof
    se = np.sqrt(sigma2 / denominator) if sigma2 > 0 else 0.0
    statistic = gamma / se if se > 0 else float("-inf")
    critical = -2.86 if alpha >= 0.05 else -3.43
    passed = bool(statistic < critical)
    return CheckResult(
        name="dickey-fuller (stationarity)",
        passed=passed,
        statistic=float(statistic),
        detail=f"DF={statistic:.2f} vs critical {critical:.2f}",
    )


def spearman_independence(samples: Sequence[float], lag: int = 1,
                          alpha: float = 0.05) -> CheckResult:
    """Spearman rank correlation between the series and its lag.

    Independence passes when the correlation is not significantly
    different from zero.
    """
    array = _as_clean_array(samples, 10, "Spearman independence")
    if lag < 1 or lag >= array.size:
        raise StatisticsError(
            f"lag must be in [1, {array.size - 1}], got {lag}"
        )
    rho, p_value = scipy_stats.spearmanr(array[:-lag], array[lag:])
    if np.isnan(rho):
        # Constant input: no evidence of dependence.
        rho, p_value = 0.0, 1.0
    passed = bool(p_value >= alpha)
    return CheckResult(
        name=f"spearman independence (lag {lag})",
        passed=passed,
        statistic=float(rho),
        detail=f"rho={rho:.3f}, p={p_value:.3f}",
    )


def run_all_checks(gaps_us: Sequence[float],
                   run_samples: Sequence[float]
                   ) -> Tuple[CheckResult, ...]:
    """The full Lancet-style hygiene battery for one experiment."""
    return (
        anderson_darling_exponential(gaps_us),
        dickey_fuller_stationarity(run_samples),
        spearman_independence(run_samples),
    )
