"""Diagnostics for the iid assumption (paper Section III, "IID samples").

Confidence intervals require independent, identically-distributed
samples.  The paper's protocol (one sample per run, environment reset
between runs) is designed to guarantee this; these diagnostics are the
checks it recommends when in doubt: autocorrelation, lag plots and the
turning-point test.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import InsufficientSamplesError, StatisticsError
from repro.stats.descriptive import _as_clean_array


def autocorrelation(samples: Sequence[float], lag: int = 1) -> float:
    """Sample autocorrelation of *samples* at *lag*.

    Returns a value in [-1, 1]; values near 0 indicate no correlation
    between a sample and its lagged self (supporting independence).

    Raises:
        StatisticsError: non-positive lag, or lag >= sample count.
    """
    array = _as_clean_array(samples, 2, "autocorrelation")
    if lag < 1:
        raise StatisticsError(f"lag must be >= 1, got {lag}")
    if lag >= array.size:
        raise StatisticsError(
            f"lag {lag} too large for {array.size} samples"
        )
    centered = array - np.mean(array)
    denominator = float(np.dot(centered, centered))
    if denominator == 0.0:
        return 0.0
    numerator = float(np.dot(centered[:-lag], centered[lag:]))
    return numerator / denominator


def autocorrelation_profile(samples: Sequence[float],
                            max_lag: int = 10) -> List[float]:
    """Autocorrelation at lags ``1..max_lag`` (clipped to n-1)."""
    array = _as_clean_array(samples, 3, "autocorrelation profile")
    limit = min(max_lag, array.size - 1)
    return [autocorrelation(array, lag) for lag in range(1, limit + 1)]


def lag_pairs(samples: Sequence[float],
              lag: int = 1) -> List[Tuple[float, float]]:
    """The ``(x[i], x[i+lag])`` pairs a lag plot would draw."""
    array = _as_clean_array(samples, 2, "lag pairs")
    if lag < 1 or lag >= array.size:
        raise StatisticsError(
            f"lag must be in [1, {array.size - 1}], got {lag}"
        )
    return list(zip(array[:-lag].tolist(), array[lag:].tolist()))


def turning_point_test(samples: Sequence[float],
                       alpha: float = 0.05) -> Tuple[bool, float]:
    """Turning-point test for randomness.

    A point is a turning point when it is a strict local max or min.
    For an iid sequence of length n the count is asymptotically normal
    with mean ``2(n-2)/3`` and variance ``(16n-29)/90``.

    Returns:
        ``(looks_random, p_value)`` -- *looks_random* is True when the
        null hypothesis of randomness is not rejected at *alpha*.
    """
    if not 0.0 < alpha < 1.0:
        raise StatisticsError(f"alpha must be in (0, 1), got {alpha}")
    array = _as_clean_array(samples, 3, "turning point test")
    n = array.size
    turning_points = 0
    for index in range(1, n - 1):
        left, mid, right = array[index - 1], array[index], array[index + 1]
        if (mid > left and mid > right) or (mid < left and mid < right):
            turning_points += 1
    expected = 2.0 * (n - 2) / 3.0
    variance = (16.0 * n - 29.0) / 90.0
    if variance <= 0:
        raise InsufficientSamplesError(4, n, "turning point test")
    z = (turning_points - expected) / math.sqrt(variance)
    p_value = float(2.0 * (1.0 - scipy_stats.norm.cdf(abs(z))))
    return (p_value >= alpha, p_value)
