"""Descriptive statistics with input validation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InsufficientSamplesError, StatisticsError


def _as_clean_array(samples: Sequence[float], minimum: int,
                    what: str) -> np.ndarray:
    array = np.asarray(samples, dtype=float)
    if array.ndim != 1:
        raise StatisticsError(f"{what}: expected a 1-D sample array")
    if array.size < minimum:
        raise InsufficientSamplesError(minimum, array.size, what)
    if not np.all(np.isfinite(array)):
        raise StatisticsError(f"{what}: samples contain NaN/inf")
    return array


@dataclass(frozen=True)
class SummaryStats:
    """Common summary of one sample set."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    p95: float
    p99: float

    def format_row(self, label: str = "") -> str:
        """Fixed-width row for report tables."""
        return (
            f"{label:<24} n={self.count:<5d} mean={self.mean:>10.2f} "
            f"median={self.median:>10.2f} std={self.std:>8.2f} "
            f"p99={self.p99:>10.2f}"
        )


def describe(samples: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for *samples*.

    Raises:
        InsufficientSamplesError: for an empty sample set.
        StatisticsError: for non-finite or non-1-D input.
    """
    array = _as_clean_array(samples, 1, "describe")
    return SummaryStats(
        count=int(array.size),
        mean=float(np.mean(array)),
        median=float(np.median(array)),
        std=float(np.std(array, ddof=1)) if array.size > 1 else 0.0,
        minimum=float(np.min(array)),
        maximum=float(np.max(array)),
        p95=float(np.percentile(array, 95)),
        p99=float(np.percentile(array, 99)),
    )
