"""Statistical methods from the paper's Section III.

Implements the exact protocol the paper uses: non-parametric median
confidence intervals (equations 1-2), parametric mean CIs, the
Shapiro-Wilk normality test, iid diagnostics (autocorrelation, lag
pairs, turning-point test), the parametric repetition-count formula
(equation 3, Jain) and the non-parametric CONFIRM method (Maricq et
al., OSDI'18), plus Little's-law helpers for sizing feasible loads.
"""

from repro.stats.ci import (
    ConfidenceInterval,
    intervals_overlap,
    nonparametric_median_ci,
    parametric_mean_ci,
)
from repro.stats.descriptive import describe, SummaryStats
from repro.stats.iid import (
    autocorrelation,
    lag_pairs,
    turning_point_test,
)
from repro.stats.littles_law import (
    concurrency,
    feasible_qps,
    max_qps_for_concurrency,
)
from repro.stats.normality import (
    NormalityResult,
    frequency_chart,
    shapiro_wilk,
)
from repro.stats.repetitions import (
    confirm_repetitions,
    parametric_repetitions,
)
from repro.stats.lancet_checks import (
    CheckResult,
    anderson_darling_exponential,
    dickey_fuller_stationarity,
    run_all_checks,
    spearman_independence,
)
from repro.stats.bootstrap import (
    bootstrap_ci,
    bootstrap_median_ci,
    bootstrap_p99_ci,
)

__all__ = [
    "bootstrap_ci",
    "bootstrap_median_ci",
    "bootstrap_p99_ci",
    "CheckResult",
    "anderson_darling_exponential",
    "dickey_fuller_stationarity",
    "spearman_independence",
    "run_all_checks",
    "ConfidenceInterval",
    "nonparametric_median_ci",
    "parametric_mean_ci",
    "intervals_overlap",
    "describe",
    "SummaryStats",
    "autocorrelation",
    "lag_pairs",
    "turning_point_test",
    "NormalityResult",
    "shapiro_wilk",
    "frequency_chart",
    "parametric_repetitions",
    "confirm_repetitions",
    "concurrency",
    "feasible_qps",
    "max_qps_for_concurrency",
]
