"""A real locality-sensitive-hashing index (HDSearch's core data
structure).

HDSearch answers image-similarity queries by hashing feature vectors
into LSH buckets and scanning the union of the query's buckets
(MicroSuite [38]).  We implement random-hyperplane LSH over synthetic
feature vectors: the index is genuine (build, query, candidate
retrieval, distance ranking), and the *service-time model* of the
simulated bucket tier is derived from the measured candidate counts of
calibration queries against this index -- so the simulated HDSearch
inherits its latency distribution from real data-structure behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LshConfig:
    """Index geometry.

    Attributes:
        num_points: dataset size (feature vectors).
        dim: feature-vector dimensionality.
        num_tables: independent hash tables (OR-amplification).
        num_bits: hyperplanes per table (AND-amplification).
    """

    num_points: int = 4_000
    dim: int = 64
    num_tables: int = 4
    num_bits: int = 12

    def __post_init__(self) -> None:
        if min(self.num_points, self.dim, self.num_tables,
               self.num_bits) <= 0:
            raise ConfigurationError("all LSH parameters must be positive")
        if self.num_bits > 30:
            raise ConfigurationError("num_bits > 30 would overflow keys")


class LshIndex:
    """Random-hyperplane LSH over a synthetic feature-vector dataset."""

    def __init__(self, config: LshConfig = LshConfig(),
                 seed: int = 1234) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        # Clustered synthetic "image features": a handful of gaussian
        # blobs, which is what real embedding datasets look like to LSH.
        centers = rng.normal(size=(16, config.dim)) * 2.0
        assignment = rng.integers(0, len(centers), size=config.num_points)
        self.points = (centers[assignment]
                       + rng.normal(size=(config.num_points, config.dim)))
        self.planes = rng.normal(
            size=(config.num_tables, config.num_bits, config.dim))
        self.tables: List[Dict[int, List[int]]] = []
        self._build()

    # ------------------------------------------------------------------
    def _hash(self, table: int, vectors: np.ndarray) -> np.ndarray:
        """Hash rows of *vectors* into table *table*'s bucket keys."""
        projections = vectors @ self.planes[table].T
        bits = (projections > 0).astype(np.int64)
        weights = 1 << np.arange(self.config.num_bits, dtype=np.int64)
        return bits @ weights

    def _build(self) -> None:
        for table in range(self.config.num_tables):
            keys = self._hash(table, self.points)
            buckets: Dict[int, List[int]] = {}
            for point_index, key in enumerate(keys.tolist()):
                buckets.setdefault(key, []).append(point_index)
            self.tables.append(buckets)

    # ------------------------------------------------------------------
    def candidates(self, query: np.ndarray) -> List[int]:
        """Union of bucket members across tables for *query*."""
        query = np.asarray(query, dtype=float)
        if query.shape != (self.config.dim,):
            raise ConfigurationError(
                f"query must have shape ({self.config.dim},), "
                f"got {query.shape}"
            )
        seen: Dict[int, None] = {}
        for table in range(self.config.num_tables):
            key = int(self._hash(table, query[None, :])[0])
            for point_index in self.tables[table].get(key, ()):
                seen[point_index] = None
        return list(seen)

    def query(self, query: np.ndarray, k: int = 10
              ) -> List[Tuple[int, float]]:
        """Return the *k* nearest candidates as (index, distance)."""
        candidate_ids = self.candidates(query)
        if not candidate_ids:
            return []
        vectors = self.points[candidate_ids]
        distances = np.linalg.norm(vectors - query, axis=1)
        order = np.argsort(distances)[:k]
        return [(candidate_ids[i], float(distances[i])) for i in order]

    # ------------------------------------------------------------------
    def calibrate_candidate_counts(self, num_queries: int = 2_000,
                                   seed: int = 99) -> np.ndarray:
        """Candidate-set sizes for realistic queries (dataset points
        plus noise), used to derive the bucket-tier service model."""
        rng = np.random.default_rng(seed)
        picks = rng.integers(0, self.config.num_points, size=num_queries)
        noise = rng.normal(scale=0.3,
                           size=(num_queries, self.config.dim))
        queries = self.points[picks] + noise
        counts = np.empty(num_queries, dtype=np.int64)
        # Vectorized hashing per table, then per-query bucket unions.
        keys = np.stack([
            self._hash(table, queries)
            for table in range(self.config.num_tables)
        ])
        for q in range(num_queries):
            seen: Dict[int, None] = {}
            for table in range(self.config.num_tables):
                for point_index in self.tables[table].get(
                        int(keys[table, q]), ()):
                    seen[point_index] = None
            counts[q] = len(seen)
        return counts


@lru_cache(maxsize=4)
def default_index(seed: int = 1234) -> LshIndex:
    """The shared, deterministic index used by the HDSearch testbed."""
    return LshIndex(LshConfig(), seed=seed)


@lru_cache(maxsize=4)
def default_candidate_counts(seed: int = 1234) -> tuple:
    """Calibrated candidate counts for :func:`default_index`."""
    counts = default_index(seed).calibrate_candidate_counts()
    return tuple(int(c) for c in counts)
