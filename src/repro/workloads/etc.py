"""The Facebook ETC key-value workload (Atikoglu et al., SIGMETRICS'12).

ETC is the general-purpose Memcached pool at Facebook and the workload
Mutilate recreates in the paper.  Its published characteristics, which
we model:

* key sizes: 16--250 bytes, mode around 20--40 bytes (we use a
  shifted lognormal clamped to the range);
* value sizes: heavy-tailed, most under 1 KB (generalized-Pareto-like;
  we use a lognormal body with median ~125 B plus a Pareto tail);
* operation mix: dominated by GETs, roughly 30:1 GET:SET.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

#: GET fraction of the ETC operation mix.
ETC_GET_FRACTION = 30.0 / 31.0

_KEY_MIN_B, _KEY_MAX_B = 16, 250
_VALUE_MAX_B = 1_000_000


class EtcWorkload:
    """Sampler for ETC request characteristics (resource demands)."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng

    # ------------------------------------------------------------------
    # The draws below use the primitive-sampler forms (exp(mu+sigma*z),
    # expm1(e/a)); bit-identical to the named Generator distributions
    # while skipping their kwargs dispatch -- this sampler runs three
    # times per simulated request.
    def sample_key_size_b(self) -> int:
        """Sample one key size in bytes."""
        rng = self._rng
        if rng is None:
            return 31
        size = int(math.exp(3.4 + 0.35 * float(rng.standard_normal())))
        size += _KEY_MIN_B
        return int(min(_KEY_MAX_B, max(_KEY_MIN_B, size)))

    def sample_value_size_b(self) -> int:
        """Sample one value size in bytes (heavy-tailed)."""
        rng = self._rng
        if rng is None:
            return 125
        if rng.random() < 0.95:
            size = int(math.exp(4.8 + 1.0 * float(rng.standard_normal())))
        else:
            # Pareto tail: the rare multi-KB values ETC is known for.
            pareto = math.expm1(float(rng.standard_exponential()) / 1.5)
            size = int(1000 * (1.0 + pareto))
        return int(min(_VALUE_MAX_B, max(1, size)))

    def sample_is_get(self) -> bool:
        """Sample the operation type (True for GET)."""
        if self._rng is None:
            return True
        return bool(self._rng.random() < ETC_GET_FRACTION)

    # ------------------------------------------------------------------
    def sample_message_kb(self) -> float:
        """Approximate wire size of one request/response pair, in KB."""
        key = self.sample_key_size_b()
        value = self.sample_value_size_b()
        overhead = 48  # protocol framing
        return (key + value + overhead) / 1024.0
