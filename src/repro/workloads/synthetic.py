"""The synthetic tunable-latency workload (paper Section IV-B).

A service whose processing time can be extended by a configurable
busy-wait delay, used for the sensitivity analysis of Fig. 7: as the
added delay grows from 0 to 400 us, the client-configuration gap
(LP/HP) should shrink from ~2.8x toward ~1x.  The added delay is
implemented as busy work -- it occupies the worker (service time, not
sleep time), exactly as the paper specifies.
"""

from __future__ import annotations

import warnings

from repro.config.knobs import HardwareConfig
from repro.config.presets import SERVER_BASELINE
from repro.core.testbed import Testbed
from repro.errors import ConfigurationError
from repro.loadgen.mutilate import build_mutilate
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.server.request import Request
from repro.server.service import LognormalService
from repro.server.station import ServiceStation
from repro.sim.engine import Simulator
from repro.sim.kernel import make_simulator
from repro.sim.random import RandomStreams
from repro.workloads.common import server_env_scale

#: Worker threads (10, pinned on a single socket -- Section IV-B).
SYNTHETIC_WORKERS = 10
#: Base processing before the tunable delay.
SYNTHETIC_BASE_US = 10.0
SYNTHETIC_SIGMA = 0.30
#: Request/response payload.
SYNTHETIC_MESSAGE_KB = 0.125


class DelayedService:
    """Base service time extended by a fixed busy-wait delay."""

    def __init__(self, added_delay_us: float) -> None:
        if added_delay_us < 0:
            raise ConfigurationError(
                f"added delay must be >= 0, got {added_delay_us}"
            )
        self.added_delay_us = float(added_delay_us)
        self._base = LognormalService(SYNTHETIC_BASE_US, SYNTHETIC_SIGMA)

    def sample_service_us(self, rng=None, request: Request = None) -> float:
        return self._base.sample_service_us(rng) + self.added_delay_us

    def mean_service_us(self) -> float:
        return SYNTHETIC_BASE_US + self.added_delay_us


def _synthetic_service(sim: Simulator, streams: RandomStreams,
                       server_config: HardwareConfig,
                       params: SkylakeParameters = DEFAULT_PARAMETERS,
                       *, env_scale: float = 1.0,
                       name: str = "synthetic",
                       stream_prefix: str = "",
                       added_delay_us: float = 0.0) -> ServiceStation:
    """One synthetic-workload server instance (a replicable group)."""
    return ServiceStation(
        sim, server_config, DelayedService(added_delay_us),
        workers=SYNTHETIC_WORKERS,
        rng=streams.stream(stream_prefix + "service"),
        params=params,
        name=name,
        env_scale=env_scale,
    )


def _synthetic_request_factory(streams: RandomStreams):
    def request_factory(index: int) -> Request:
        return Request(request_id=index, size_kb=SYNTHETIC_MESSAGE_KB)

    return request_factory


def _synthetic_testbed(
        seed: int,
        client_config: HardwareConfig,
        server_config: HardwareConfig = SERVER_BASELINE,
        qps: float = 10_000.0,
        added_delay_us: float = 0.0,
        num_requests: int = 2_000,
        warmup_fraction: float = 0.1,
        params: SkylakeParameters = DEFAULT_PARAMETERS,
        obs=None,
        engine=None,
        arrival=None,
        ) -> Testbed:
    """Assemble one single-use synthetic-workload testbed.

    Args:
        seed: root seed for the run.
        client_config: LP or HP client hardware configuration.
        server_config: server hardware configuration.
        qps: offered load (the paper sweeps 5K-20K).
        added_delay_us: the tunable busy-wait extension (0-400 us).
        num_requests: requests per run.
        warmup_fraction: leading samples to discard.
        params: machine timing constants.
        obs: optional :class:`~repro.obs.Observability` context.
        engine: event-loop engine name (``None`` keeps the
            reference loop; ``"vectorized"`` selects the
            bit-identical batch-dequeue kernel).
        arrival: optional arrival-shape spec (or dict / shape name);
            ``None`` keeps the stock Poisson process.
    """
    from repro.loadgen.interarrival import arrival_process
    sim = make_simulator(engine)
    if obs is not None:
        obs.install(sim)
    streams = RandomStreams(seed)
    station = _synthetic_service(
        sim, streams, server_config, params,
        env_scale=server_env_scale(streams, params),
        added_delay_us=added_delay_us,
    )
    request_factory = _synthetic_request_factory(streams)
    generator = build_mutilate(
        sim, streams, client_config, station, qps, num_requests,
        request_factory=request_factory,
        warmup_fraction=warmup_fraction,
        params=params,
        interarrival=arrival_process(arrival, qps),
    )
    return Testbed(
        sim, streams, generator, station,
        workload="synthetic", qps=qps,
        client_config=client_config, server_config=server_config,
    )


def build_synthetic_testbed(*args, **kwargs) -> Testbed:
    """Deprecated shim for the synthetic builder.

    Construct an :class:`~repro.api.ExperimentPlan` instead::

        from repro.api import experiment
        plan = experiment("synthetic").client("LP").build()
        testbed = plan.testbed(seed)
    """
    warnings.warn(
        "build_synthetic_testbed() is deprecated; construct an "
        "ExperimentPlan via repro.api (experiment('synthetic')...) "
        "and use plan.testbed(seed) / plan.run()",
        DeprecationWarning, stacklevel=2)
    return _synthetic_testbed(*args, **kwargs)
