"""Memcached testbed (paper Section IV-B).

A Memcached instance with 10 worker threads pinned on one socket,
driven by a Mutilate-style open-loop time-sensitive generator on four
client machines, replaying the Facebook ETC workload.  Server-side
processing averages ~10 us [4], [7], which is why this workload is the
paper's most client-sensitive one.
"""

from __future__ import annotations

import warnings

from repro.config.knobs import HardwareConfig
from repro.config.presets import SERVER_BASELINE
from repro.core.testbed import Testbed
from repro.loadgen.mutilate import build_mutilate
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.server.request import Request
from repro.server.service import LognormalService
from repro.server.station import ServiceStation
from repro.sim.engine import Simulator
from repro.sim.kernel import make_simulator
from repro.sim.random import RandomStreams
from repro.workloads.common import server_env_scale
from repro.workloads.etc import EtcWorkload

#: Worker threads of the Memcached instance (paper Section IV-B).
MEMCACHED_WORKERS = 10
#: Mean application service time at nominal frequency, before the
#: kernel stack; end-to-end server-side processing is ~10 us [4].
#: Calibrated so the 10K-500K sweep covers the paper's 5%-55%
#: utilization range with 10 workers.
MEMCACHED_SERVICE_US = 6.0
MEMCACHED_SERVICE_SIGMA = 0.35


class EtcServiceModel:
    """ETC-aware Memcached service time: lookup plus value transfer."""

    #: Extra service per KB of value copied out at nominal frequency.
    US_PER_KB = 0.25

    def __init__(self) -> None:
        # The ETC table only shapes request *sizes* (client side);
        # the service model reads the size off the request, so
        # replicated cluster stations need no ETC state of their own.
        self._base = LognormalService(
            MEMCACHED_SERVICE_US, MEMCACHED_SERVICE_SIGMA)

    def sample_service_us(self, rng=None, request: Request = None) -> float:
        size_kb = request.size_kb if request is not None else 0.125
        return (self._base.sample_service_us(rng)
                + size_kb * self.US_PER_KB)

    def mean_service_us(self) -> float:
        return MEMCACHED_SERVICE_US + 0.2 * self.US_PER_KB


def _memcached_service(sim: Simulator, streams: RandomStreams,
                       server_config: HardwareConfig,
                       params: SkylakeParameters = DEFAULT_PARAMETERS,
                       *, env_scale: float = 1.0,
                       name: str = "memcached",
                       stream_prefix: str = "") -> ServiceStation:
    """One Memcached server instance (a cluster-replicable group).

    ``stream_prefix`` namespaces the station's random stream so every
    cluster node draws independently; the empty prefix is the
    single-server testbed's exact historical stream name.
    """
    return ServiceStation(
        sim, server_config, EtcServiceModel(),
        workers=MEMCACHED_WORKERS,
        rng=streams.stream(stream_prefix + "service"),
        params=params,
        name=name,
        env_scale=env_scale,
    )


def _memcached_request_factory(streams: RandomStreams):
    """Request factory drawing ETC value sizes (client side, shared
    across all server nodes of a run)."""
    etc = EtcWorkload(streams.get("etc"))

    def request_factory(index: int) -> Request:
        return Request(request_id=index, size_kb=etc.sample_message_kb())

    return request_factory


def _memcached_testbed(
        seed: int,
        client_config: HardwareConfig,
        server_config: HardwareConfig = SERVER_BASELINE,
        qps: float = 100_000.0,
        num_requests: int = 2_000,
        warmup_fraction: float = 0.1,
        params: SkylakeParameters = DEFAULT_PARAMETERS,
        obs=None,
        engine=None,
        arrival=None,
        ) -> Testbed:
    """Assemble one single-use Memcached testbed.

    Args:
        seed: root seed; every stochastic component derives from it.
        client_config: LP or HP client hardware configuration.
        server_config: server hardware configuration (baseline, SMT
            variant, or C1E variant).
        qps: offered load (the paper sweeps 10K-500K).
        num_requests: requests per run (stands in for the paper's
            2-minute duration; the statistics are per-run summaries
            either way).
        warmup_fraction: leading samples to discard.
        params: machine timing constants.
        obs: optional :class:`~repro.obs.Observability` context,
            installed on the simulator before any component builds so
            every hook sees it.
        engine: event-loop engine name (``None`` keeps the
            reference loop; ``"vectorized"`` selects the
            bit-identical batch-dequeue kernel).
        arrival: optional arrival-shape spec (or dict / shape name);
            ``None`` keeps the stock Poisson process.
    """
    from repro.loadgen.interarrival import arrival_process
    sim = make_simulator(engine)
    if obs is not None:
        obs.install(sim)
    streams = RandomStreams(seed)
    request_factory = _memcached_request_factory(streams)
    station = _memcached_service(
        sim, streams, server_config, params,
        env_scale=server_env_scale(streams, params),
    )
    generator = build_mutilate(
        sim, streams, client_config, station, qps, num_requests,
        request_factory=request_factory,
        warmup_fraction=warmup_fraction,
        params=params,
        interarrival=arrival_process(arrival, qps),
    )
    return Testbed(
        sim, streams, generator, station,
        workload="memcached", qps=qps,
        client_config=client_config, server_config=server_config,
    )


def build_memcached_testbed(*args, **kwargs) -> Testbed:
    """Deprecated shim for the Memcached builder.

    Construct an :class:`~repro.api.ExperimentPlan` instead::

        from repro.api import experiment
        plan = experiment("memcached").client("LP").build()
        testbed = plan.testbed(seed)
    """
    warnings.warn(
        "build_memcached_testbed() is deprecated; construct an "
        "ExperimentPlan via repro.api (experiment('memcached')...) "
        "and use plan.testbed(seed) / plan.run()",
        DeprecationWarning, stacklevel=2)
    return _memcached_testbed(*args, **kwargs)
