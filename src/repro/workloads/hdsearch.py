"""HDSearch testbed: a 3-tier image-similarity service (MicroSuite).

The paper deploys HDSearch on 3 machines -- client, midtier, bucket --
with the MicroSuite paper's configuration, processes pinned to cores.
The midtier coordinates the query and fans out to bucket servers that
scan LSH candidate sets; the service's end-to-end latency is
millisecond-scale (~10x Memcached), which is what makes it the paper's
"high response latency" contrast (Fig. 4).

The bucket tier's service time is ``base + per_candidate * count``
with counts drawn from calibration queries against the *real* LSH
index in :mod:`repro.workloads.hdsearch_lsh`.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.config.knobs import HardwareConfig
from repro.config.presets import SERVER_BASELINE
from repro.core.testbed import Testbed
from repro.loadgen.hdsearch_client import build_hdsearch_client
from repro.net.link import NetworkLink
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.server.request import Request
from repro.server.service import LognormalService
from repro.server.station import ServiceStation
from repro.server.tiers import TierSpec, TieredService
from repro.sim.engine import Simulator
from repro.sim.kernel import make_simulator
from repro.sim.random import RandomStreams
from repro.workloads.common import server_env_scale
from repro.workloads.hdsearch_lsh import default_candidate_counts

#: Midtier request coordination cost (gRPC handling + merge).
MIDTIER_SERVICE_US = 60.0
MIDTIER_SIGMA = 0.25
MIDTIER_WORKERS = 4

#: Bucket-tier scan cost: fixed overhead plus per-candidate distance
#: computation at nominal frequency.
BUCKET_BASE_US = 120.0
BUCKET_US_PER_CANDIDATE = 1.1
BUCKET_WORKERS = 4
#: Parallel bucket lookups per query (max-of-fanout semantics).
BUCKET_FANOUT = 4

#: Query/response payload: a 64-dim float vector + result metadata.
HDSEARCH_MESSAGE_KB = 2.0


class BucketServiceModel:
    """LSH-scan service time driven by calibrated candidate counts."""

    def __init__(self, counts: tuple) -> None:
        if not counts:
            raise ValueError("candidate count table is empty")
        self._counts = np.asarray(counts, dtype=float)
        self._mean = float(
            BUCKET_BASE_US
            + BUCKET_US_PER_CANDIDATE * float(np.mean(self._counts)))

    def sample_service_us(self, rng=None, request: Request = None) -> float:
        if rng is None:
            return self._mean
        count = float(rng.choice(self._counts))
        return BUCKET_BASE_US + BUCKET_US_PER_CANDIDATE * count

    def mean_service_us(self) -> float:
        return self._mean


def _hdsearch_service(sim: Simulator, streams: RandomStreams,
                      server_config: HardwareConfig,
                      params: SkylakeParameters = DEFAULT_PARAMETERS,
                      *, env_scale: float = 1.0,
                      name: str = "hdsearch",
                      stream_prefix: str = "") -> TieredService:
    """One HDSearch midtier+bucket deployment (a replicable group).

    ``stream_prefix`` namespaces the tiers' random streams so cluster
    nodes draw independently; the empty prefix reproduces the
    single-server testbed's exact historical stream names.
    """
    midtier = ServiceStation(
        sim, server_config,
        LognormalService(MIDTIER_SERVICE_US, MIDTIER_SIGMA),
        workers=MIDTIER_WORKERS,
        rng=streams.stream(stream_prefix + "midtier"),
        params=params,
        name=f"{name}-midtier",
        env_scale=env_scale,
    )
    bucket = ServiceStation(
        sim, server_config,
        BucketServiceModel(default_candidate_counts()),
        workers=BUCKET_WORKERS,
        rng=streams.stream(stream_prefix + "bucket"),
        params=params,
        name=f"{name}-bucket",
        env_scale=env_scale,
    )
    inter_tier = NetworkLink(
        params, streams.stream(stream_prefix + "network-tiers"))
    return TieredService(sim, [
        TierSpec(station=midtier, fanout=1, hop_link=None),
        TierSpec(station=bucket, fanout=BUCKET_FANOUT, hop_link=inter_tier),
    ], name=name)


def _hdsearch_request_factory(streams: RandomStreams):
    def request_factory(index: int) -> Request:
        return Request(request_id=index, size_kb=HDSEARCH_MESSAGE_KB)

    return request_factory


def _hdsearch_testbed(
        seed: int,
        client_config: HardwareConfig,
        server_config: HardwareConfig = SERVER_BASELINE,
        qps: float = 1_000.0,
        num_requests: int = 1_000,
        warmup_fraction: float = 0.1,
        params: SkylakeParameters = DEFAULT_PARAMETERS,
        obs=None,
        engine=None,
        arrival=None,
        ) -> Testbed:
    """Assemble one single-use HDSearch testbed.

    Args:
        seed: root seed for the run.
        client_config: LP or HP client hardware configuration.
        server_config: hardware configuration of both server machines.
        qps: offered load (the paper sweeps 500-2500 QPS).
        num_requests: requests per run.
        warmup_fraction: leading samples to discard.
        params: machine timing constants.
        obs: optional :class:`~repro.obs.Observability` context.
        engine: event-loop engine name (``None`` keeps the
            reference loop; ``"vectorized"`` selects the
            bit-identical batch-dequeue kernel).
        arrival: optional arrival-shape spec (or dict / shape name);
            ``None`` keeps the stock Poisson process.
    """
    from repro.loadgen.interarrival import arrival_process
    sim = make_simulator(engine)
    if obs is not None:
        obs.install(sim)
    streams = RandomStreams(seed)
    service = _hdsearch_service(
        sim, streams, server_config, params,
        env_scale=server_env_scale(streams, params),
    )
    request_factory = _hdsearch_request_factory(streams)
    generator = build_hdsearch_client(
        sim, streams, client_config, service, qps, num_requests,
        request_factory=request_factory,
        warmup_fraction=warmup_fraction,
        params=params,
        interarrival=arrival_process(arrival, qps),
    )
    return Testbed(
        sim, streams, generator, service,
        workload="hdsearch", qps=qps,
        client_config=client_config, server_config=server_config,
    )


def build_hdsearch_testbed(*args, **kwargs) -> Testbed:
    """Deprecated shim for the hdsearch builder.

    Construct an :class:`~repro.api.ExperimentPlan` instead::

        from repro.api import experiment
        plan = experiment("hdsearch").client("LP").build()
        testbed = plan.testbed(seed)
    """
    warnings.warn(
        "build_hdsearch_testbed() is deprecated; construct an "
        "ExperimentPlan via repro.api (experiment('hdsearch')...) "
        "and use plan.testbed(seed) / plan.run()",
        DeprecationWarning, stacklevel=2)
    return _hdsearch_testbed(*args, **kwargs)
