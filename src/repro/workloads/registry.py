"""Builder registry: testbed builders addressable by workload name.

Campaign specs are *data* (dicts, JSON, database rows), so they cannot
hold a builder callable directly -- and multiprocessing workers need to
reconstruct the builder on the far side of a pickle boundary.  The
registry gives every workload a stable string name; a spec carries the
name, and whichever process executes the condition resolves it back to
the callable.

The four paper workloads register themselves here.  Extensions (new
scenarios, alternative service models) call :func:`register_builder`
at import time; anything importable in the worker process is usable in
a campaign.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.core.testbed import Testbed
from repro.errors import ExperimentError
from repro.workloads.hdsearch import build_hdsearch_testbed
from repro.workloads.memcached import build_memcached_testbed
from repro.workloads.socialnetwork import build_socialnetwork_testbed
from repro.workloads.synthetic import build_synthetic_testbed

#: A testbed builder: ``builder(seed=..., client_config=...,
#: server_config=..., qps=..., num_requests=..., **extra) -> Testbed``.
TestbedBuilder = Callable[..., Testbed]

#: The paper's load sweeps, per workload (Section IV-B).
DEFAULT_QPS_SWEEPS: Dict[str, Tuple[float, ...]] = {
    "memcached": (10_000, 50_000, 100_000, 200_000, 300_000,
                  400_000, 500_000),
    "hdsearch": (500, 1_000, 1_500, 2_000, 2_500),
    "socialnetwork": (100, 200, 300, 400, 500, 600),
    "synthetic": (5_000, 10_000, 15_000, 20_000),
}

_BUILDERS: Dict[str, TestbedBuilder] = {}


def register_builder(name: str, builder: TestbedBuilder,
                     replace: bool = False) -> None:
    """Register *builder* under *name*.

    Args:
        name: stable workload name, e.g. ``"memcached"``.
        builder: the testbed factory.
        replace: allow overwriting an existing registration (tests).

    Raises:
        ExperimentError: on duplicate registration without *replace*.
    """
    key = str(name)
    if not replace and key in _BUILDERS:
        raise ExperimentError(
            f"builder {key!r} is already registered; "
            f"pass replace=True to override")
    _BUILDERS[key] = builder


def builder_by_name(name: str) -> TestbedBuilder:
    """Resolve a workload name to its testbed builder.

    Raises:
        ExperimentError: if no builder is registered under *name*.
    """
    try:
        return _BUILDERS[str(name)]
    except KeyError:
        raise ExperimentError(
            f"unknown workload {name!r}; registered: "
            f"{registered_workloads()}"
        ) from None


def registered_workloads() -> Sequence[str]:
    """Sorted names of all registered workloads."""
    return tuple(sorted(_BUILDERS))


# The paper's four workloads.
register_builder("memcached", build_memcached_testbed)
register_builder("hdsearch", build_hdsearch_testbed)
register_builder("socialnetwork", build_socialnetwork_testbed)
register_builder("synthetic", build_synthetic_testbed)
