"""Workload registry: named workload definitions with parameter schemas.

Experiment specs are *data* (dicts, JSON, database rows), so they
cannot hold a builder callable directly -- and multiprocessing workers
need to reconstruct the builder on the far side of a pickle boundary.
The registry gives every workload a stable string name plus a **typed
parameter schema**: a :class:`WorkloadDefinition` pairs the testbed
builder with the :class:`ParamSpec`s of its extra knobs (e.g. the
synthetic workload's ``added_delay_us``), its load-generator identity
and its default/paper load points.

This is the plugin protocol new workloads implement::

    register_workload(WorkloadDefinition(
        name="myservice",
        builder=_myservice_testbed,
        params=(ParamSpec("fanout", int, 4, minimum=1),),
        default_qps=1_000.0,
        default_num_requests=1_000,
    ))

Anything registered this way is addressable from the whole stack:
:class:`repro.api.ExperimentPlan` validates parameters against the
schema at construction, campaigns expand into plans over it, and the
CLI lists it.  The legacy :func:`register_builder` shim keeps
schema-less callables working (their parameters pass through
unvalidated).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.testbed import Testbed
from repro.errors import ExperimentError, SpecValidationError
from repro.workloads.hdsearch import _hdsearch_testbed
from repro.workloads.memcached import _memcached_testbed
from repro.workloads.socialnetwork import _socialnetwork_testbed
from repro.workloads.synthetic import _synthetic_testbed

#: A testbed builder: ``builder(seed=..., client_config=...,
#: server_config=..., qps=..., num_requests=..., **extra) -> Testbed``.
TestbedBuilder = Callable[..., Testbed]

#: The paper's load sweeps, per workload (Section IV-B).
DEFAULT_QPS_SWEEPS: Dict[str, Tuple[float, ...]] = {
    "memcached": (10_000, 50_000, 100_000, 200_000, 300_000,
                  400_000, 500_000),
    "hdsearch": (500, 1_000, 1_500, 2_000, 2_500),
    "socialnetwork": (100, 200, 300, 400, 500, 600),
    "synthetic": (5_000, 10_000, 15_000, 20_000),
}


@dataclass(frozen=True)
class ParamSpec:
    """Schema entry for one workload parameter.

    Attributes:
        name: the builder keyword, e.g. ``"added_delay_us"``.
        kind: expected Python type (``float``, ``int``, ``bool`` or
            ``str``).  Integers are accepted for ``float`` parameters
            and normalized, matching JSON's single number type.
        default: value the builder uses when the parameter is absent.
        doc: one-line description for error messages and ``repro plan``.
        minimum: optional lower bound (inclusive) for numeric kinds.
        below: optional upper bound (exclusive) for numeric kinds.
    """

    name: str
    kind: type = float
    default: Any = None
    doc: str = ""
    minimum: Optional[float] = None
    below: Optional[float] = None

    def validate(self, workload: str, value: Any) -> Any:
        """Type-check and normalize one value, or raise."""
        ok: bool
        if self.kind is float:
            ok = (isinstance(value, (int, float))
                  and not isinstance(value, bool))
            if ok:
                value = float(value)
        elif self.kind is int:
            # JSON has one number type (and campaign ``extra``
            # canonicalizes ints to floats for hashing), so integral
            # floats are ints here.
            ok = (isinstance(value, (int, float))
                  and not isinstance(value, bool)
                  and float(value).is_integer())
            if ok:
                value = int(value)
        elif self.kind is bool:
            ok = isinstance(value, bool)
        else:
            ok = isinstance(value, self.kind)
        if not ok:
            raise SpecValidationError(
                f"workload {workload!r} parameter {self.name!r} must "
                f"be {self.kind.__name__}, got {value!r}")
        if self.minimum is not None and value < self.minimum:
            raise SpecValidationError(
                f"workload {workload!r} parameter {self.name!r} must "
                f"be >= {self.minimum:g}, got {value!r}")
        if self.below is not None and value >= self.below:
            raise SpecValidationError(
                f"workload {workload!r} parameter {self.name!r} must "
                f"be < {self.below:g}, got {value!r}")
        return value


#: Builder keywords every paper testbed accepts beyond the universal
#: five (seed / client_config / server_config / qps / num_requests).
#: Campaign ``extra`` dicts may carry them for backwards
#: compatibility; :class:`repro.api.ExperimentPlan` routes them
#: through :class:`~repro.api.LoadSpec` instead.
UNIVERSAL_BUILDER_PARAMS: Tuple[ParamSpec, ...] = (
    ParamSpec("warmup_fraction", float, 0.1,
              "leading samples to discard", minimum=0.0, below=1.0),
)


@dataclass(frozen=True)
class WorkloadDefinition:
    """One registered workload: builder, schema, defaults.

    Attributes:
        name: stable workload name, e.g. ``"memcached"``.
        builder: the testbed factory (called with the universal
            keywords plus any schema parameters).
        params: schema of the workload-specific parameters.
        description: one-line summary for listings.
        generator: identity of the load generator the builder wires
            in (``repro plan`` and :class:`~repro.api.LoadSpec`'s
            ``generator`` field validate against it).
        default_qps: builder's default offered load.
        default_num_requests: builder's default requests per run.
        qps_sweep: the paper's load sweep for this workload.
        allow_unknown_params: legacy escape hatch -- parameters not in
            the schema pass through unvalidated (used by
            :func:`register_builder`).
    """

    name: str
    builder: TestbedBuilder
    params: Tuple[ParamSpec, ...] = ()
    description: str = ""
    generator: str = "default"
    default_qps: float = 1_000.0
    default_num_requests: int = 1_000
    qps_sweep: Tuple[float, ...] = ()
    allow_unknown_params: bool = False

    # ------------------------------------------------------------------
    def schema(self) -> Dict[str, ParamSpec]:
        """Parameter name -> :class:`ParamSpec`."""
        return {spec.name: spec for spec in self.params}

    def param_names(self) -> Tuple[str, ...]:
        """Sorted names of the workload-specific parameters."""
        return tuple(sorted(spec.name for spec in self.params))

    def validate_params(self, params: Mapping[str, Any], *,
                        include_universal: bool = False
                        ) -> Dict[str, Any]:
        """Validate *params* against the schema; return them normalized.

        Args:
            params: candidate parameter dict.
            include_universal: additionally accept the universal
                builder keywords (``warmup_fraction``) -- the campaign
                ``extra`` compatibility surface.

        Raises:
            SpecValidationError: naming the offending key and listing
                the valid parameter names (with a did-you-mean
                suggestion when one is close).
        """
        schema = self.schema()
        if include_universal:
            for spec in UNIVERSAL_BUILDER_PARAMS:
                schema.setdefault(spec.name, spec)
        out: Dict[str, Any] = {}
        for key, value in dict(params).items():
            key = str(key)
            spec = schema.get(key)
            if spec is None:
                if self.allow_unknown_params:
                    out[key] = value
                    continue
                valid = ", ".join(sorted(schema)) or "(none)"
                close = difflib.get_close_matches(key, list(schema), n=1)
                hint = f" -- did you mean {close[0]!r}?" if close else ""
                raise SpecValidationError(
                    f"unknown parameter {key!r} for workload "
                    f"{self.name!r}{hint} (valid parameters: {valid})")
            out[key] = spec.validate(self.name, value)
        return out

    def build_testbed(self, seed: int, *, client_config: Any,
                      server_config: Any, qps: float,
                      num_requests: int, **params: Any) -> Testbed:
        """Invoke the builder with the universal keywords + *params*."""
        return self.builder(
            seed=seed,
            client_config=client_config,
            server_config=server_config,
            qps=qps,
            num_requests=num_requests,
            **params)


_WORKLOADS: Dict[str, WorkloadDefinition] = {}


def register_workload(definition: WorkloadDefinition,
                      replace: bool = False) -> None:
    """Register *definition* under its name.

    Args:
        definition: the workload definition.
        replace: allow overwriting an existing registration (tests).

    Raises:
        ExperimentError: on duplicate registration without *replace*.
    """
    key = str(definition.name)
    if not replace and key in _WORKLOADS:
        raise ExperimentError(
            f"workload {key!r} is already registered; "
            f"pass replace=True to override")
    _WORKLOADS[key] = definition


def workload_by_name(name: str) -> WorkloadDefinition:
    """Resolve a workload name to its definition.

    Raises:
        ExperimentError: (a :class:`SpecValidationError`) if no
            workload is registered under *name*, with a did-you-mean
            suggestion when a registered name is close.
    """
    try:
        return _WORKLOADS[str(name)]
    except KeyError:
        close = difflib.get_close_matches(
            str(name), list(_WORKLOADS), n=1)
        hint = f" -- did you mean {close[0]!r}?" if close else ""
        raise SpecValidationError(
            f"unknown workload {name!r}{hint} (registered: "
            f"{', '.join(registered_workloads())})"
        ) from None


def find_workload(name: str) -> Optional[WorkloadDefinition]:
    """The definition registered under *name*, or None.

    The lenient lookup: campaign specs use it so a spec naming a
    workload that only the executing process imports still
    constructs (validation then happens at plan-build time).
    """
    return _WORKLOADS.get(str(name))


def registered_workloads() -> Sequence[str]:
    """Sorted names of all registered workloads."""
    return tuple(sorted(_WORKLOADS))


# ------------------------------------------------------------- legacy shims
def register_builder(name: str, builder: TestbedBuilder,
                     replace: bool = False) -> None:
    """Register a bare builder callable under *name* (legacy surface).

    The builder is wrapped in a schema-less
    :class:`WorkloadDefinition` with ``allow_unknown_params=True``, so
    arbitrary ``extra`` kwargs keep flowing through unvalidated
    exactly as before the typed registry existed.  New workloads
    should call :func:`register_workload` with a real schema instead.
    """
    register_workload(
        WorkloadDefinition(
            name=str(name),
            builder=builder,
            description="legacy register_builder() entry",
            allow_unknown_params=True,
        ),
        replace=replace)


def builder_by_name(name: str) -> TestbedBuilder:
    """Resolve a workload name to its testbed builder.

    Raises:
        ExperimentError: if no workload is registered under *name*.
    """
    return workload_by_name(name).builder


# The paper's four workloads.
register_workload(WorkloadDefinition(
    name="memcached",
    builder=_memcached_testbed,
    description="Memcached + Mutilate replaying Facebook ETC "
                "(Section IV-B)",
    generator="mutilate",
    default_qps=100_000.0,
    default_num_requests=2_000,
    qps_sweep=DEFAULT_QPS_SWEEPS["memcached"],
))
register_workload(WorkloadDefinition(
    name="hdsearch",
    builder=_hdsearch_testbed,
    description="MicroSuite HDSearch: 3-tier image similarity over "
                "a real LSH index",
    generator="hdsearch-client",
    default_qps=1_000.0,
    default_num_requests=1_000,
    qps_sweep=DEFAULT_QPS_SWEEPS["hdsearch"],
))
register_workload(WorkloadDefinition(
    name="socialnetwork",
    builder=_socialnetwork_testbed,
    description="DeathStarBench Social Network on a Reed98-scale "
                "social graph",
    generator="wrk2",
    default_qps=300.0,
    default_num_requests=800,
    qps_sweep=DEFAULT_QPS_SWEEPS["socialnetwork"],
))
register_workload(WorkloadDefinition(
    name="synthetic",
    builder=_synthetic_testbed,
    params=(
        ParamSpec("added_delay_us", float, 0.0,
                  "busy-wait service-time extension (Fig. 7)",
                  minimum=0.0),
    ),
    description="tunable-service-latency sensitivity workload "
                "(Fig. 7)",
    generator="mutilate",
    default_qps=10_000.0,
    default_num_requests=2_000,
    qps_sweep=DEFAULT_QPS_SWEEPS["synthetic"],
))
