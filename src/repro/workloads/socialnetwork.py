"""Social Network testbed (DeathStarBench) on a real social graph.

The paper deploys DeathStarBench's Social Network on one node with
Docker Swarm, initializes the social graph with the Reed98 Facebook
network (962 users), fills the database with compose-post queries, and
then issues only read-user-timeline requests through an extended wrk2
with 20 connections.

We build a Reed98-scale power-law social graph with networkx, perform
the compose-post fill over it, and derive the read-user-timeline
request path: frontend (nginx) -> user-timeline service -> post
storage, where the timeline length distribution comes from the filled
graph.  End-to-end latency is 2-3 ms average / 10-20 ms p99, the
paper's "high response latency" regime where client configuration no
longer matters much (Fig. 6).
"""

from __future__ import annotations

import warnings

from functools import lru_cache
from typing import Tuple

import networkx as nx
import numpy as np

from repro.config.knobs import HardwareConfig
from repro.config.presets import SERVER_BASELINE
from repro.core.testbed import Testbed
from repro.loadgen.wrk2 import build_wrk2
from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters
from repro.server.request import Request
from repro.server.service import LognormalService
from repro.server.station import ServiceStation
from repro.server.tiers import TierSpec, TieredService
from repro.sim.engine import Simulator
from repro.sim.kernel import make_simulator
from repro.sim.random import RandomStreams
from repro.workloads.common import server_env_scale

#: Reed98 Facebook network scale [36].
REED98_NODES = 962
REED98_EDGES_PER_NODE = 10
#: compose-post operations used to fill the database before each run.
FILL_POSTS = 5_000
#: Timeline page size (posts returned per read-user-timeline).
TIMELINE_PAGE = 40

#: Tier service parameters at nominal frequency.
FRONTEND_SERVICE_US = 250.0
FRONTEND_SIGMA = 0.30
FRONTEND_WORKERS = 4
TIMELINE_BASE_US = 550.0
TIMELINE_US_PER_POST = 22.0
TIMELINE_WORKERS = 2
STORAGE_SERVICE_US = 800.0
STORAGE_SIGMA = 1.0
STORAGE_WORKERS = 2

#: Timeline response payload per request.
SOCIAL_MESSAGE_KB = 4.0


@lru_cache(maxsize=4)
def social_graph(seed: int = 98) -> "nx.Graph":
    """A Reed98-scale power-law clustered social graph."""
    return nx.powerlaw_cluster_graph(
        REED98_NODES, REED98_EDGES_PER_NODE, 0.3, seed=seed)


@lru_cache(maxsize=4)
def timeline_length_distribution(seed: int = 98) -> Tuple[int, ...]:
    """Per-read timeline lengths after the compose-post fill.

    Posts are composed by users in proportion to their degree (popular
    users post more), and reads target users the same way; the result
    is the empirical timeline-length table the service model draws
    from.
    """
    graph = social_graph(seed)
    rng = np.random.default_rng(seed)
    degrees = np.array([graph.degree(node) for node in graph.nodes()],
                       dtype=float)
    weights = degrees / degrees.sum()
    authors = rng.choice(len(degrees), size=FILL_POSTS, p=weights)
    posts_per_user = np.bincount(authors, minlength=len(degrees))
    reads = rng.choice(len(degrees), size=4_000, p=weights)
    lengths = np.minimum(posts_per_user[reads], TIMELINE_PAGE)
    return tuple(int(v) for v in lengths)


class TimelineServiceModel:
    """read-user-timeline cost: base plus per-post retrieval."""

    def __init__(self, lengths: Tuple[int, ...]) -> None:
        if not lengths:
            raise ValueError("timeline length table is empty")
        self._lengths = np.asarray(lengths, dtype=float)
        self._mean = float(
            TIMELINE_BASE_US
            + TIMELINE_US_PER_POST * float(np.mean(self._lengths)))

    def sample_service_us(self, rng=None, request: Request = None) -> float:
        if rng is None:
            return self._mean
        length = float(rng.choice(self._lengths))
        return TIMELINE_BASE_US + TIMELINE_US_PER_POST * length

    def mean_service_us(self) -> float:
        return self._mean


def _socialnetwork_service(sim: Simulator, streams: RandomStreams,
                           server_config: HardwareConfig,
                           params: SkylakeParameters = DEFAULT_PARAMETERS,
                           *, env_scale: float = 1.0,
                           name: str = "social-network",
                           stream_prefix: str = "") -> TieredService:
    """One Social Network node: frontend -> timeline -> storage.

    ``stream_prefix`` namespaces the tiers' random streams so cluster
    nodes draw independently; the empty prefix reproduces the
    single-server testbed's exact historical stream names.
    """
    frontend = ServiceStation(
        sim, server_config,
        LognormalService(FRONTEND_SERVICE_US, FRONTEND_SIGMA),
        workers=FRONTEND_WORKERS,
        rng=streams.stream(stream_prefix + "frontend"),
        params=params, name="nginx", env_scale=env_scale)
    timeline = ServiceStation(
        sim, server_config,
        TimelineServiceModel(timeline_length_distribution()),
        workers=TIMELINE_WORKERS,
        rng=streams.stream(stream_prefix + "timeline"),
        params=params, name="user-timeline", env_scale=env_scale)
    storage = ServiceStation(
        sim, server_config,
        LognormalService(STORAGE_SERVICE_US, STORAGE_SIGMA),
        workers=STORAGE_WORKERS,
        rng=streams.stream(stream_prefix + "storage"),
        params=params, name="post-storage", env_scale=env_scale)

    # All services share one node (Docker Swarm on a single machine),
    # so inter-tier hops cross loopback: no wire latency.
    return TieredService(sim, [
        TierSpec(station=frontend),
        TierSpec(station=timeline),
        TierSpec(station=storage),
    ], name=name)


def _socialnetwork_request_factory(streams: RandomStreams):
    def request_factory(index: int) -> Request:
        return Request(request_id=index, size_kb=SOCIAL_MESSAGE_KB)

    return request_factory


def _socialnetwork_testbed(
        seed: int,
        client_config: HardwareConfig,
        server_config: HardwareConfig = SERVER_BASELINE,
        qps: float = 300.0,
        num_requests: int = 800,
        warmup_fraction: float = 0.1,
        params: SkylakeParameters = DEFAULT_PARAMETERS,
        obs=None,
        engine=None,
        arrival=None,
        ) -> Testbed:
    """Assemble one single-use Social Network testbed.

    Args:
        seed: root seed for the run.
        client_config: LP or HP client hardware configuration.
        server_config: server-node hardware configuration.
        qps: offered load (the paper sweeps 100-600 QPS).
        num_requests: requests per run.
        warmup_fraction: leading samples to discard.
        params: machine timing constants.
        obs: optional :class:`~repro.obs.Observability` context.
        engine: event-loop engine name (``None`` keeps the
            reference loop; ``"vectorized"`` selects the
            bit-identical batch-dequeue kernel).
        arrival: optional arrival-shape spec (or dict / shape name);
            ``None`` keeps the stock Poisson process.
    """
    from repro.loadgen.interarrival import arrival_process
    sim = make_simulator(engine)
    if obs is not None:
        obs.install(sim)
    streams = RandomStreams(seed)
    service = _socialnetwork_service(
        sim, streams, server_config, params,
        env_scale=server_env_scale(streams, params),
    )
    request_factory = _socialnetwork_request_factory(streams)
    generator = build_wrk2(
        sim, streams, client_config, service, qps, num_requests,
        request_factory=request_factory,
        warmup_fraction=warmup_fraction,
        params=params,
        interarrival=arrival_process(arrival, qps),
    )
    return Testbed(
        sim, streams, generator, service,
        workload="socialnetwork", qps=qps,
        client_config=client_config, server_config=server_config,
    )


def build_socialnetwork_testbed(*args, **kwargs) -> Testbed:
    """Deprecated shim for the socialnetwork builder.

    Construct an :class:`~repro.api.ExperimentPlan` instead::

        from repro.api import experiment
        plan = experiment("socialnetwork").client("LP").build()
        testbed = plan.testbed(seed)
    """
    warnings.warn(
        "build_socialnetwork_testbed() is deprecated; construct an "
        "ExperimentPlan via repro.api (experiment('socialnetwork')...) "
        "and use plan.testbed(seed) / plan.run()",
        DeprecationWarning, stacklevel=2)
    return _socialnetwork_testbed(*args, **kwargs)
