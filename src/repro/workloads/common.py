"""Helpers shared by the workload builders."""

from __future__ import annotations

from repro.parameters import SkylakeParameters
from repro.sim.random import RandomStreams


def server_env_scale(streams: RandomStreams,
                     params: SkylakeParameters,
                     stream: str = "server-env") -> float:
    """Run-level environment factor for server-side service times.

    Real servers drift a little run to run (cache/TLB state, memory
    placement, thermal headroom); the paper's Section V-C variability
    analysis depends on this floor existing on the server too.

    Args:
        streams: the run's random streams.
        params: machine timing constants.
        stream: stream name -- cluster assembly draws one factor per
            server node (``node<i>/server-env``) so machines drift
            independently, exactly like a real fleet.
    """
    if params.env_sigma_server == 0:
        return 1.0
    rng = streams.get(stream)
    return float(rng.lognormal(0.0, params.env_sigma_server))
