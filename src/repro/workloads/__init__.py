"""The paper's four workloads, built on the substrates.

* :mod:`repro.workloads.memcached` -- Memcached + Mutilate + the
  Facebook ETC workload (Section IV-B).
* :mod:`repro.workloads.hdsearch` -- HDSearch from MicroSuite: a
  3-tier image-similarity service backed by a real LSH index.
* :mod:`repro.workloads.socialnetwork` -- Social Network from
  DeathStarBench on a Reed98-scale social graph.
* :mod:`repro.workloads.synthetic` -- the tunable-service-latency
  sensitivity workload.

Each workload registers a :class:`~repro.workloads.registry.\
WorkloadDefinition` -- builder + typed parameter schema -- in
:mod:`repro.workloads.registry`, the plugin protocol the
:mod:`repro.api` plan layer compiles against.  The legacy
``build_*_testbed(...)`` entry points remain as deprecated shims.
"""

from repro.workloads.etc import EtcWorkload
from repro.workloads.memcached import build_memcached_testbed
from repro.workloads.hdsearch import build_hdsearch_testbed
from repro.workloads.socialnetwork import build_socialnetwork_testbed
from repro.workloads.synthetic import build_synthetic_testbed
from repro.workloads.registry import (
    DEFAULT_QPS_SWEEPS,
    ParamSpec,
    WorkloadDefinition,
    builder_by_name,
    find_workload,
    register_builder,
    register_workload,
    registered_workloads,
    workload_by_name,
)

__all__ = [
    "DEFAULT_QPS_SWEEPS",
    "EtcWorkload",
    "ParamSpec",
    "WorkloadDefinition",
    "build_memcached_testbed",
    "build_hdsearch_testbed",
    "build_socialnetwork_testbed",
    "build_synthetic_testbed",
    "builder_by_name",
    "find_workload",
    "register_builder",
    "register_workload",
    "registered_workloads",
    "workload_by_name",
]
