"""Fluent construction of :class:`~repro.api.specs.ExperimentPlan`.

The chainable front door for interactive use and examples::

    from repro.api import experiment

    result = (experiment("memcached")
              .client("LP")
              .load(qps=100_000, num_requests=1_000)
              .policy(runs=10)
              .run())

Every step validates immediately (an unknown workload or parameter
fails on the ``experiment(...)`` call, not deep inside a worker), and
:meth:`PlanBuilder.build` returns the frozen plan for hashing,
serialization or sweeping.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping, Optional, Union

from repro.api.specs import (
    ExperimentPlan,
    HardwareSpec,
    LoadSpec,
    RunPolicy,
    WorkloadSpec,
    _as_config,
)
from repro.cluster.spec import ClusterSpec, as_cluster_spec
from repro.errors import SpecValidationError
from repro.config.knobs import HardwareConfig
from repro.config.presets import LP_CLIENT
from repro.core.experiment import ExperimentResult
from repro.graph.spec import ServiceGraphSpec, as_graph_spec
from repro.loadgen.interarrival import ArrivalSpec

__all__ = ["PlanBuilder", "experiment"]


class PlanBuilder:
    """Accumulates an :class:`ExperimentPlan`, one chained call at a time.

    Defaults: LP client (the paper's "untuned experimenter"
    baseline), server baseline, the workload's own default load and
    request count, and the paper's 50-run policy.
    """

    def __init__(self, workload: str, **params: Any) -> None:
        self._workload = WorkloadSpec.create(workload, **params)
        definition = self._workload.definition
        self._load = LoadSpec(
            qps=definition.default_qps,
            num_requests=definition.default_num_requests)
        self._hardware = HardwareSpec(client=LP_CLIENT)
        self._policy = RunPolicy()
        self._cluster = ClusterSpec()
        self._graph: Optional[ServiceGraphSpec] = None

    # ------------------------------------------------------------------
    def params(self, **params: Any) -> "PlanBuilder":
        """Merge workload parameters (validated against the schema)."""
        merged = {**self._workload.param_dict(), **params}
        self._workload = WorkloadSpec.create(
            self._workload.name, **merged)
        return self

    def client(self, config: Union[str, HardwareConfig],
               label: str = "") -> "PlanBuilder":
        """Set the client configuration (preset name or config)."""
        resolved = _as_config(config, "client")
        self._hardware = replace(
            self._hardware, client=resolved,
            client_label=label or resolved.name)
        return self

    def server(self, config: Union[str, HardwareConfig],
               label: str = "") -> "PlanBuilder":
        """Set the server configuration (preset name or config)."""
        resolved = _as_config(config, "server")
        self._hardware = replace(
            self._hardware, server=resolved,
            server_label=label or resolved.name)
        return self

    def load(self, qps: Optional[float] = None,
             num_requests: Optional[int] = None,
             warmup_fraction: Optional[float] = None,
             generator: Optional[str] = None,
             arrival: Optional[Union[ArrivalSpec, str,
                                     Mapping[str, Any]]] = None,
             ) -> "PlanBuilder":
        """Set load fields; omitted arguments keep their value."""
        self._load = LoadSpec(
            qps=self._load.qps if qps is None else qps,
            num_requests=(self._load.num_requests
                          if num_requests is None else num_requests),
            warmup_fraction=(self._load.warmup_fraction
                             if warmup_fraction is None
                             else warmup_fraction),
            generator=(self._load.generator
                       if generator is None else generator),
            arrival=(self._load.arrival
                     if arrival is None else arrival))
        return self

    def policy(self, runs: Optional[int] = None,
               base_seed: Optional[int] = None,
               label: Optional[str] = None,
               sink: Optional[str] = None,
               trace: Optional[bool] = None,
               metrics: Optional[bool] = None,
               engine: Optional[str] = None,
               workers: Optional[int] = None) -> "PlanBuilder":
        """Set run-policy fields; omitted arguments keep their value."""
        self._policy = RunPolicy(
            runs=self._policy.runs if runs is None else runs,
            base_seed=(self._policy.base_seed
                       if base_seed is None else base_seed),
            label=self._policy.label if label is None else label,
            sink=self._policy.sink if sink is None else sink,
            trace=self._policy.trace if trace is None else trace,
            metrics=(self._policy.metrics
                     if metrics is None else metrics),
            engine=self._policy.engine if engine is None else engine,
            workers=(self._policy.workers
                     if workers is None else workers))
        return self

    def cluster(self,
                spec: Optional[Union[ClusterSpec,
                                     Mapping[str, Any]]] = None,
                **fields: Any) -> "PlanBuilder":
        """Deploy on a cluster topology (spec, dict, or fields)::

            experiment("memcached").cluster(
                nodes=4, lb_policy="power-of-two")

        Fields merge into the topology accumulated so far; with no
        arguments the current topology is kept unchanged (unlike
        ``ExperimentPlan.with_cluster()``, which resets).
        """
        if spec is not None and fields:
            raise SpecValidationError(
                "pass either a cluster spec or keyword fields, "
                "not both")
        if spec is None:
            spec = self._cluster.with_fields(**fields)
        self._cluster = as_cluster_spec(spec)
        self._graph = None
        return self

    def graph(self,
              spec: Optional[Union[ServiceGraphSpec, str,
                                   Mapping[str, Any]]] = None
              ) -> "PlanBuilder":
        """Deploy on a service-graph topology::

            experiment("memcached").graph("memcached-cached")

        Accepts a :class:`~repro.graph.spec.ServiceGraphSpec`, its
        dict form, or a graph preset name.  Setting a graph resets
        the cluster to single-server (each tier carries its own
        shape); calling with no argument clears the graph.
        """
        if isinstance(spec, str):
            from repro.graph.presets import graph_preset
            spec = graph_preset(spec)
        self._graph = as_graph_spec(spec)
        if self._graph is not None:
            self._cluster = ClusterSpec()
        return self

    # ------------------------------------------------------------------
    def build(self) -> ExperimentPlan:
        """The frozen, validated plan."""
        return ExperimentPlan(
            workload=self._workload,
            load=self._load,
            hardware=self._hardware,
            policy=self._policy,
            cluster=self._cluster,
            graph=self._graph)

    def run(self) -> ExperimentResult:
        """Build and execute in one step."""
        return self.build().run()


def experiment(workload: str, **params: Any) -> PlanBuilder:
    """Start a fluent plan for *workload* (the public entry point)."""
    return PlanBuilder(workload, **params)
