"""Typed, frozen experiment specs and their compiled execution.

An experiment is authored once as a validated, serializable
:class:`ExperimentPlan` -- four small frozen dataclasses composed
together -- and *compiled* into execution on demand:

* :class:`WorkloadSpec` -- which workload, with which parameters,
  validated against the registry's per-workload schema at
  construction (unknown workload -> did-you-mean error; unknown
  parameter -> schema error naming the valid keys);
* :class:`LoadSpec` -- offered load, requests per run, warmup
  fraction and load-generator choice;
* :class:`HardwareSpec` -- the client and server
  :class:`~repro.config.knobs.HardwareConfig` pair, with sweep
  labels;
* :class:`RunPolicy` -- repetitions, base seed, result label and the
  observability knobs (telemetry sink, lifecycle tracing).

Every spec is hashable data: ``plan.to_json()`` round-trips exactly
(``ExperimentPlan.from_json(plan.to_json()) == plan``) and
``plan.content_hash()`` is stable across processes and sessions, so
plans can key result stores and ship to remote executors unchanged.
``plan.run()`` executes the paper's repetition protocol and returns
the existing :class:`~repro.core.experiment.ExperimentResult`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from itertools import product
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.cluster.spec import (
    SINGLE_SERVER,
    ClusterSpec,
    as_cluster_spec,
)
from repro.config.serialize import (
    content_hash,
    hardware_config_from_dict,
    hardware_config_to_dict,
)
from repro.config.knobs import HardwareConfig
from repro.config.presets import SERVER_BASELINE
from repro.core.experiment import (
    DEFAULT_RUNS,
    Experiment,
    ExperimentResult,
)
from repro.core.testbed import Testbed
from repro.errors import SpecValidationError
from repro.graph.spec import ServiceGraphSpec, as_graph_spec
from repro.loadgen.interarrival import ArrivalSpec, as_arrival_spec
from repro.obs.sinks import DEFAULT_SINK, validate_sink_name
from repro.sim.kernel import DEFAULT_ENGINE, validate_engine_name
from repro.workloads.registry import WorkloadDefinition, workload_by_name

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.core import Observability

#: ``LoadSpec.generator`` value meaning "the workload's own generator".
DEFAULT_GENERATOR = "default"


def _check_keys(data: Mapping[str, Any], allowed: Tuple[str, ...],
                what: str) -> None:
    """Reject unknown keys: a misspelled field in a spec file must
    fail loudly, not silently fall back to a default."""
    unknown = sorted(set(map(str, data)) - set(allowed))
    if unknown:
        raise SpecValidationError(
            f"unknown key(s) {', '.join(map(repr, unknown))} in "
            f"{what} spec; valid keys: {', '.join(allowed)}")


def _as_config(value: Union[str, Mapping[str, Any], HardwareConfig],
               what: str) -> HardwareConfig:
    """Coerce a config, preset name, or dict into a HardwareConfig."""
    if isinstance(value, HardwareConfig):
        return value
    if isinstance(value, (str, Mapping)):
        return hardware_config_from_dict(
            value if isinstance(value, str) else dict(value))
    raise SpecValidationError(
        f"{what} must be a HardwareConfig, preset name or config "
        f"dict, got {type(value).__name__}")


@dataclass(frozen=True)
class WorkloadSpec:
    """Which workload to run, with which typed parameters.

    Attributes:
        name: registered workload name (see
            :mod:`repro.workloads.registry`).
        params: workload parameters as sorted ``(name, value)`` pairs
            -- validated and normalized against the workload's
            registered schema at construction.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", str(self.name))
        definition = workload_by_name(self.name)
        normalized = definition.validate_params(dict(self.params))
        object.__setattr__(
            self, "params", tuple(sorted(normalized.items())))

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, name: str, **params: Any) -> "WorkloadSpec":
        """Build a spec from keyword parameters."""
        return cls(name=name, params=tuple(params.items()))

    @property
    def definition(self) -> WorkloadDefinition:
        """The registry definition backing this spec."""
        return workload_by_name(self.name)

    def param_dict(self) -> Dict[str, Any]:
        """The parameters as a plain dict."""
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        _check_keys(data, ("name", "params"), "workload")
        return cls(name=str(data["name"]),
                   params=tuple(dict(data.get("params", {})).items()))


@dataclass(frozen=True)
class LoadSpec:
    """How hard and how long to drive the testbed.

    Attributes:
        qps: offered load.
        num_requests: requests per run.
        warmup_fraction: leading samples to discard; ``None`` keeps
            the workload builder's default.
        generator: load-generator choice; ``"default"`` keeps the
            workload's own (Mutilate, wrk2, the HDSearch client).
        arrival: optional time-varying arrival shape (an
            :class:`~repro.loadgen.interarrival.ArrivalSpec`, its
            dict form, or a shape name); ``None`` -- and the default
            Poisson spec, which normalizes to ``None`` -- keep the
            stock exponential process.
    """

    qps: float
    num_requests: int = 1_000
    warmup_fraction: Optional[float] = None
    generator: str = DEFAULT_GENERATOR
    arrival: Optional[ArrivalSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "qps", float(self.qps))
        object.__setattr__(self, "num_requests", int(self.num_requests))
        object.__setattr__(self, "generator", str(self.generator))
        object.__setattr__(self, "arrival",
                           as_arrival_spec(self.arrival))
        if self.qps <= 0:
            raise SpecValidationError(
                f"qps must be > 0, got {self.qps!r}")
        if self.num_requests < 1:
            raise SpecValidationError(
                f"num_requests must be >= 1, got {self.num_requests!r}")
        if self.warmup_fraction is not None:
            warmup = float(self.warmup_fraction)
            if not 0.0 <= warmup < 1.0:
                raise SpecValidationError(
                    f"warmup_fraction must be in [0, 1), got {warmup!r}")
            object.__setattr__(self, "warmup_fraction", warmup)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize; ``arrival`` is emitted only when a non-default
        shape is set, so pre-existing plan hashes stay byte-stable."""
        data: Dict[str, Any] = {
            "qps": self.qps,
            "num_requests": self.num_requests,
            "warmup_fraction": self.warmup_fraction,
            "generator": self.generator,
        }
        if self.arrival is not None:
            data["arrival"] = self.arrival.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LoadSpec":
        _check_keys(data, ("qps", "num_requests", "warmup_fraction",
                           "generator", "arrival"), "load")
        return cls(
            qps=data["qps"],
            num_requests=data.get("num_requests", 1_000),
            warmup_fraction=data.get("warmup_fraction"),
            generator=data.get("generator") or DEFAULT_GENERATOR,
            arrival=data.get("arrival"),
        )


@dataclass(frozen=True)
class HardwareSpec:
    """The client/server hardware pair under study.

    Attributes:
        client: client machine configuration (LP, HP, or custom);
            accepts a preset name or config dict at construction.
        server: server machine configuration (default: the Table II
            baseline).
        client_label: sweep label, defaulting to ``client.name``.
        server_label: condition label, defaulting to ``server.name``.
    """

    client: HardwareConfig
    server: HardwareConfig = SERVER_BASELINE
    client_label: str = ""
    server_label: str = ""

    def __post_init__(self) -> None:
        client = _as_config(self.client, "client")
        server = _as_config(self.server, "server")
        object.__setattr__(self, "client", client)
        object.__setattr__(self, "server", server)
        object.__setattr__(
            self, "client_label",
            str(self.client_label) or client.name)
        object.__setattr__(
            self, "server_label",
            str(self.server_label) or server.name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "client": hardware_config_to_dict(self.client),
            "server": hardware_config_to_dict(self.server),
            "client_label": self.client_label,
            "server_label": self.server_label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HardwareSpec":
        _check_keys(data, ("client", "server", "client_label",
                           "server_label"), "hardware")
        # `or ""`: a JSON null label means "use the default", not the
        # literal string "None".
        return cls(
            client=data["client"],
            server=data.get("server") or SERVER_BASELINE,
            client_label=str(data.get("client_label") or ""),
            server_label=str(data.get("server_label") or ""),
        )


@dataclass(frozen=True)
class RunPolicy:
    """The repetition protocol: how many runs, from which seeds.

    Attributes:
        runs: repetitions (the paper: 50).
        base_seed: first root seed; repetition *i* uses
            ``base_seed + i``.
        label: result label; empty means the workload name.
        sink: telemetry sink name (see :mod:`repro.obs.sinks`); the
            default ``"columnar"`` is the exact per-request buffer.
        trace: record request-lifecycle spans (off by default; spans
            cost memory but never perturb the simulation).
        metrics: harvest component counters into
            :attr:`~repro.core.testbed.RunMetrics.obs_metrics` even
            without tracing or a custom sink (cache hit rates,
            retry/hedge counts, dispatch tallies).
        engine: event-loop engine name (see
            :mod:`repro.sim.kernel`); the default ``"reference"`` is
            the pure-Python loop, ``"vectorized"`` the bit-identical
            batch-dequeue kernel.
        workers: shard width for multi-core execution (see
            :mod:`repro.parallel`).  ``workers=W > 1`` decomposes
            each repetition into W striped full-replica shards at
            ``qps / W`` -- a *semantic* change (a W-replica cluster
            behind random assignment), so it participates in the
            content hash; the default ``1`` is omitted from the
            serialized form, keeping every pre-existing plan hash and
            store key byte-stable.
    """

    runs: int = DEFAULT_RUNS
    base_seed: int = 0
    label: str = ""
    sink: str = DEFAULT_SINK
    trace: bool = False
    metrics: bool = False
    engine: str = DEFAULT_ENGINE
    workers: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "runs", int(self.runs))
        object.__setattr__(self, "base_seed", int(self.base_seed))
        object.__setattr__(self, "label", str(self.label))
        object.__setattr__(self, "sink",
                           validate_sink_name(self.sink))
        object.__setattr__(self, "trace", bool(self.trace))
        object.__setattr__(self, "metrics", bool(self.metrics))
        object.__setattr__(self, "engine",
                           validate_engine_name(self.engine))
        object.__setattr__(self, "workers", int(self.workers))
        if self.runs < 1:
            raise SpecValidationError(
                f"runs must be >= 1, got {self.runs!r}")
        if self.workers < 1:
            raise SpecValidationError(
                f"workers must be >= 1, got {self.workers!r}")

    def seed_schedule(self) -> Tuple[int, ...]:
        """The root seed of every repetition, in run order."""
        return tuple(range(self.base_seed, self.base_seed + self.runs))

    @property
    def observed(self) -> bool:
        """True when runs need an :class:`~repro.obs.Observability`."""
        return (self.trace or self.metrics
                or self.sink != DEFAULT_SINK)

    def observability(self) -> Optional["Observability"]:
        """A fresh per-run observability context, or None when the
        policy keeps the defaults (the zero-overhead path)."""
        if not self.observed:
            return None
        from repro.obs.core import Observability
        return Observability(trace=self.trace, sink=self.sink)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize; the observability fields are emitted only when
        non-default, so pre-existing plan hashes and campaign store
        keys stay byte-stable."""
        data = {"runs": self.runs, "base_seed": self.base_seed,
                "label": self.label}
        if self.sink != DEFAULT_SINK:
            data["sink"] = self.sink
        if self.trace:
            data["trace"] = True
        if self.metrics:
            data["metrics"] = True
        if self.engine != DEFAULT_ENGINE:
            data["engine"] = self.engine
        if self.workers != 1:
            data["workers"] = self.workers
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunPolicy":
        _check_keys(data, ("runs", "base_seed", "label", "sink",
                           "trace", "metrics", "engine", "workers"),
                    "policy")
        return cls(
            runs=data.get("runs", DEFAULT_RUNS),
            base_seed=data.get("base_seed", 0),
            label=str(data.get("label") or ""),
            sink=str(data.get("sink", DEFAULT_SINK)),
            trace=bool(data.get("trace", False)),
            metrics=bool(data.get("metrics", False)),
            engine=str(data.get("engine", DEFAULT_ENGINE)),
            workers=data.get("workers", 1),
        )


@dataclass(frozen=True)
class ExperimentPlan:
    """One complete, validated, serializable experiment.

    The single public entry point to the simulator: the CLI, the
    campaign subsystem, the figure studies and the examples all
    compile down to plans.  A plan is pure data -- compare it, hash
    it, ship it over JSON -- until :meth:`run` executes it.
    """

    workload: WorkloadSpec
    load: LoadSpec
    hardware: HardwareSpec
    policy: RunPolicy = field(default_factory=RunPolicy)
    #: Server-side topology; the default is the paper's single-server
    #: testbed (and is omitted from the serialized form, so existing
    #: plan hashes and store keys are untouched).
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    #: Multi-tier service graph; ``None`` (the default, omitted from
    #: the serialized form) keeps the cluster/single-server paths.
    #: Mutually exclusive with a non-single-server ``cluster`` -- a
    #: graph tier carries its own cluster shape instead.
    graph: Optional[ServiceGraphSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "cluster", as_cluster_spec(self.cluster))
        object.__setattr__(self, "graph", as_graph_spec(self.graph))
        if self.graph is not None and not self.cluster.is_single_server:
            raise SpecValidationError(
                "a plan deploys either a service graph or a cluster, "
                "not both; give the graph's tiers their own cluster "
                "shapes instead")
        definition = self.workload.definition
        generator = self.load.generator
        if generator not in (DEFAULT_GENERATOR, definition.generator):
            raise SpecValidationError(
                f"workload {self.workload.name!r} drives load with "
                f"{definition.generator!r}; got generator="
                f"{generator!r} (supported: '{DEFAULT_GENERATOR}', "
                f"{definition.generator!r})")
        if generator != DEFAULT_GENERATOR:
            # Naming the workload's own generator explicitly is the
            # same plan as the default: normalize so the two forms
            # share one content hash (plans are store/cache keys).
            object.__setattr__(
                self, "load",
                replace(self.load, generator=DEFAULT_GENERATOR))

    # ------------------------------------------------------------ identity
    @property
    def label(self) -> str:
        """The result label this plan will produce."""
        return self.policy.label or self.workload.name

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the hash input and wire format).

        A default (single-server) cluster is omitted entirely:
        ``content_hash()`` of every pre-cluster plan -- and therefore
        every stored campaign row keyed by one -- is unchanged.
        """
        data = {
            "workload": self.workload.to_dict(),
            "load": self.load.to_dict(),
            "hardware": self.hardware.to_dict(),
            "policy": self.policy.to_dict(),
        }
        if not self.cluster.is_single_server:
            data["cluster"] = self.cluster.to_dict()
        if self.graph is not None:
            data["graph"] = self.graph.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentPlan":
        """Rebuild (and re-validate) a plan from its dict form.

        Strict on keys: a misspelled section or field raises instead
        of silently running with defaults.  ``policy`` itself may be
        omitted (all its fields have defaults).
        """
        _check_keys(data, ("workload", "load", "hardware", "policy",
                           "cluster", "graph"), "experiment plan")
        try:
            return cls(
                workload=WorkloadSpec.from_dict(data["workload"]),
                load=LoadSpec.from_dict(data["load"]),
                hardware=HardwareSpec.from_dict(data["hardware"]),
                policy=RunPolicy.from_dict(data.get("policy", {})),
                cluster=as_cluster_spec(data.get("cluster")),
                graph=as_graph_spec(data.get("graph")),
            )
        except KeyError as exc:
            raise SpecValidationError(
                f"invalid experiment plan: missing {exc}") from exc

    def to_json(self, indent: int = 2) -> str:
        """JSON text form (what a plan file contains)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentPlan":
        """Rebuild a plan from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(
                f"experiment plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def content_hash(self) -> str:
        """Stable identity of this plan across processes/sessions."""
        return content_hash(self.to_dict())

    # ------------------------------------------------------- fluent copies
    def with_params(self, **params: Any) -> "ExperimentPlan":
        """Copy with workload parameters merged in."""
        merged = {**self.workload.param_dict(), **params}
        return replace(self, workload=WorkloadSpec.create(
            self.workload.name, **merged))

    def with_load(self, **changes: Any) -> "ExperimentPlan":
        """Copy with load fields replaced."""
        return replace(self, load=replace(self.load, **changes))

    def with_qps(self, qps: float) -> "ExperimentPlan":
        """Copy at a different offered load."""
        return self.with_load(qps=float(qps))

    def with_client(self, client: Union[str, HardwareConfig],
                    label: str = "") -> "ExperimentPlan":
        """Copy measured by a different client configuration."""
        config = _as_config(client, "client")
        return replace(self, hardware=replace(
            self.hardware, client=config,
            client_label=label or config.name))

    def with_server(self, server: Union[str, HardwareConfig],
                    label: str = "") -> "ExperimentPlan":
        """Copy against a different server configuration."""
        config = _as_config(server, "server")
        return replace(self, hardware=replace(
            self.hardware, server=config,
            server_label=label or config.name))

    def with_policy(self, **changes: Any) -> "ExperimentPlan":
        """Copy with run-policy fields replaced."""
        return replace(self, policy=replace(self.policy, **changes))

    def with_cluster(self,
                     cluster: Optional[Union[ClusterSpec,
                                             Mapping[str, Any]]] = None,
                     **fields: Any) -> "ExperimentPlan":
        """Copy deployed on a different cluster topology.

        Pass a :class:`~repro.cluster.spec.ClusterSpec` (or its dict
        form), or keyword fields merged into the current topology::

            plan.with_cluster(nodes=4, lb_policy="power-of-two")

        With no arguments the copy **resets to single-server** (the
        ``with_*`` family always produces the stated change; keeping
        the topology is spelled ``plan`` itself).
        """
        if cluster is not None and fields:
            raise SpecValidationError(
                "pass either a cluster spec or keyword fields, "
                "not both")
        if cluster is None:
            cluster = (self.cluster.with_fields(**fields)
                       if fields else SINGLE_SERVER)
        return replace(self, cluster=as_cluster_spec(cluster),
                       graph=None)

    def with_graph(self,
                   graph: Optional[Union[ServiceGraphSpec, str,
                                         Mapping[str, Any]]] = None
                   ) -> "ExperimentPlan":
        """Copy deployed on a service-graph topology.

        Pass a :class:`~repro.graph.spec.ServiceGraphSpec`, its dict
        form, or a graph preset name (``"memcached-cached"``).  With
        no argument the copy resets to the plan's non-graph topology.
        Setting a graph resets the cluster to single-server (each
        tier carries its own shape).
        """
        if isinstance(graph, str):
            from repro.graph.presets import graph_preset
            graph = graph_preset(graph)
        spec = as_graph_spec(graph)
        if spec is None:
            return replace(self, graph=None)
        return replace(self, graph=spec, cluster=SINGLE_SERVER)

    def with_seed(self, base_seed: int) -> "ExperimentPlan":
        """Copy starting from a different base seed."""
        return self.with_policy(base_seed=int(base_seed))

    def with_label(self, label: str) -> "ExperimentPlan":
        """Copy producing a different result label."""
        return self.with_policy(label=str(label))

    # ---------------------------------------------------------- execution
    def builder(self) -> Callable[[int], Testbed]:
        """The compiled seed -> :class:`Testbed` factory."""
        definition = self.workload.definition
        kwargs = self.workload.param_dict()
        if self.load.warmup_fraction is not None:
            kwargs["warmup_fraction"] = self.load.warmup_fraction
        if self.load.arrival is not None:
            kwargs["arrival"] = self.load.arrival
        policy = self.policy

        if self.graph is not None:
            # Deferred import for the same reason as the cluster
            # branch: the graph assembly pulls in every workload.
            from repro.graph.testbed import build_graph_testbed
            graph = self.graph

            def build_graph(seed: int) -> Testbed:
                extra = dict(kwargs)
                obs = policy.observability()
                if obs is not None:
                    extra["obs"] = obs
                if policy.engine != DEFAULT_ENGINE:
                    extra["engine"] = policy.engine
                return build_graph_testbed(
                    self.workload.name, seed,
                    client_config=self.hardware.client,
                    server_config=self.hardware.server,
                    qps=self.load.qps,
                    num_requests=self.load.num_requests,
                    graph=graph,
                    **extra)

            return build_graph

        if not self.cluster.is_single_server:
            # Deferred import: the assembly module pulls in every
            # workload's building blocks, which only matters once a
            # plan actually deploys a cluster.
            from repro.cluster.testbed import build_cluster_testbed
            cluster = self.cluster

            def build_cluster(seed: int) -> Testbed:
                # A fresh Observability per run: contexts are
                # single-use like testbeds.  The kwarg is only passed
                # when observability is on, so builders that predate
                # it keep working untouched.  Same for the engine:
                # the default reference loop is spelled by absence.
                extra = dict(kwargs)
                obs = policy.observability()
                if obs is not None:
                    extra["obs"] = obs
                if policy.engine != DEFAULT_ENGINE:
                    extra["engine"] = policy.engine
                return build_cluster_testbed(
                    self.workload.name, seed,
                    client_config=self.hardware.client,
                    server_config=self.hardware.server,
                    qps=self.load.qps,
                    num_requests=self.load.num_requests,
                    cluster=cluster,
                    **extra)

            return build_cluster

        def build(seed: int) -> Testbed:
            extra = dict(kwargs)
            obs = policy.observability()
            if obs is not None:
                extra["obs"] = obs
            if policy.engine != DEFAULT_ENGINE:
                extra["engine"] = policy.engine
            return definition.build_testbed(
                seed,
                client_config=self.hardware.client,
                server_config=self.hardware.server,
                qps=self.load.qps,
                num_requests=self.load.num_requests,
                **extra)

        return build

    def testbed(self, seed: Optional[int] = None) -> Testbed:
        """One single-use testbed (default seed: the policy's base)."""
        base = self.policy.base_seed if seed is None else int(seed)
        return self.builder()(base)

    def experiment(self) -> Experiment:
        """The repetition-protocol executor for this plan."""
        return Experiment(
            self.builder(),
            runs=self.policy.runs,
            base_seed=self.policy.base_seed,
            label=self.policy.label)

    def run(self) -> ExperimentResult:
        """Execute all repetitions; returns the per-run results.

        A policy with ``workers > 1`` dispatches to the sharded
        multi-core runner (:mod:`repro.parallel`); the default runs
        the classic single-process repetition loop.
        """
        if self.policy.workers > 1:
            # Deferred import: the parallel runner imports this
            # module for plan reconstruction in worker processes.
            from repro.parallel.runner import run_sharded
            return run_sharded(self)
        return self.experiment().run()

    # ------------------------------------------------------------- sweeps
    def variants(self, *, qps: Optional[Iterable[float]] = None,
                 **param_axes: Iterable[Any]) -> List["ExperimentPlan"]:
        """Expand this plan over one or more axes, without running.

        ``qps`` sweeps the offered load; any other keyword must be a
        registered workload parameter and sweeps its values.  Axes
        combine cartesian-style with qps innermost, matching campaign
        expansion order.
        """
        qps_values = ([self.load.qps] if qps is None
                      else [float(q) for q in qps])
        axes = [(name, list(values))
                for name, values in param_axes.items()]
        plans: List[ExperimentPlan] = []
        for combo in product(*(values for _, values in axes)):
            overrides = {name: value
                         for (name, _), value in zip(axes, combo)}
            base = self.with_params(**overrides) if overrides else self
            for value in qps_values:
                plans.append(base.with_qps(value))
        return plans

    def sweep(self, *, qps: Optional[Iterable[float]] = None,
              **param_axes: Iterable[Any]) -> List[ExperimentResult]:
        """Run :meth:`variants` and return their results, in order."""
        return [plan.run() for plan in self.variants(
            qps=qps, **param_axes)]
