"""repro.api: the unified, typed experiment surface.

Everything that runs an experiment -- the CLI, campaign sweeps, the
figure studies, the examples -- compiles down to one object: the
:class:`ExperimentPlan`.  Author an experiment once as a validated,
serializable spec; run it anywhere::

    from repro.api import experiment

    plan = (experiment("synthetic", added_delay_us=200.0)
            .client("HP")
            .load(qps=10_000, num_requests=1_000)
            .policy(runs=10, base_seed=0)
            .build())

    result = plan.run()                    # ExperimentResult
    results = plan.sweep(qps=[5e3, 1e4])   # one result per load
    text = plan.to_json()                  # ship it anywhere
    assert ExperimentPlan.from_json(text) == plan
    plan.content_hash()                    # stable store/cache key

Validation happens at construction: unknown workloads fail with a
did-you-mean error listing the registry, unknown workload parameters
fail naming the valid keys.  New workloads join the API by calling
:func:`register_workload` with a :class:`WorkloadDefinition` (builder
+ parameter schema); see :mod:`repro.workloads.registry`.
"""

from repro.api.builder import PlanBuilder, experiment
from repro.api.specs import (
    ExperimentPlan,
    HardwareSpec,
    LoadSpec,
    RunPolicy,
    WorkloadSpec,
)
from repro.cluster.spec import ClusterSpec
from repro.errors import SpecValidationError
from repro.graph.spec import (
    GraphTierSpec,
    ResiliencePolicy,
    ServiceGraphSpec,
)
from repro.loadgen.interarrival import ArrivalSpec
from repro.workloads.registry import (
    ParamSpec,
    WorkloadDefinition,
    register_workload,
    registered_workloads,
    workload_by_name,
)

__all__ = [
    "ArrivalSpec",
    "ClusterSpec",
    "ExperimentPlan",
    "GraphTierSpec",
    "HardwareSpec",
    "LoadSpec",
    "ParamSpec",
    "PlanBuilder",
    "ResiliencePolicy",
    "RunPolicy",
    "ServiceGraphSpec",
    "SpecValidationError",
    "WorkloadDefinition",
    "WorkloadSpec",
    "experiment",
    "register_workload",
    "registered_workloads",
    "workload_by_name",
]
