"""Calibrated timing constants for the simulated Skylake-class testbed.

The paper runs on CloudLab c220g5 nodes: two Intel Xeon Silver 4114
(Skylake) sockets, 20 physical cores / 40 hardware threads, 0.8 GHz
minimum, 2.2 GHz nominal, 3.0 GHz max turbo.  This module is the single
source of truth for every latency constant the simulation uses, so that
calibration changes happen in exactly one place.

Values come from three sources, in order of preference: numbers quoted
in the paper itself (C-state transition 2--200 us, DVFS ~30 us, context
switch ~25 us), the Linux ``intel_idle`` driver's Skylake table, and
typical datacenter-network figures.  Where the paper quotes a range we
choose a point inside it and record the choice in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class CStateSpec:
    """Static description of one ACPI/intel_idle C-state.

    Attributes:
        name: canonical name, e.g. ``"C1E"``.
        exit_latency_us: time to wake a core back to C0.
        target_residency_us: minimum expected idle period for which the
            cpuidle governor considers entering this state worthwhile.
        power_relative: rough per-core power while resident, relative to
            active C0 power (1.0). Used only by power accounting.
    """

    name: str
    exit_latency_us: float
    target_residency_us: float
    power_relative: float


#: The Skylake server C-state table (mirrors intel_idle's skx_cstates).
SKYLAKE_CSTATES: Tuple[CStateSpec, ...] = (
    CStateSpec("C0", exit_latency_us=0.0, target_residency_us=0.0,
               power_relative=1.00),
    CStateSpec("C1", exit_latency_us=2.0, target_residency_us=2.0,
               power_relative=0.45),
    CStateSpec("C1E", exit_latency_us=10.0, target_residency_us=20.0,
               power_relative=0.30),
    CStateSpec("C6", exit_latency_us=133.0, target_residency_us=600.0,
               power_relative=0.05),
)


@dataclass(frozen=True)
class SkylakeParameters:
    """All calibrated constants for the simulated c220g5-like machine.

    Instances are immutable; experiments that want to explore a
    different machine build a modified copy with
    :func:`dataclasses.replace`.
    """

    # --- frequency domain ------------------------------------------------
    min_freq_ghz: float = 0.8
    nominal_freq_ghz: float = 2.2
    turbo_freq_ghz: float = 3.0
    #: Latency of a legacy DVFS transition (paper cites ~30 us [15]).
    dvfs_transition_us: float = 30.0
    #: Interval at which a utilization-driven governor re-evaluates.
    governor_interval_us: float = 10_000.0
    #: Utilization above which powersave-style governors ramp to max.
    governor_ramp_threshold: float = 0.80

    # --- idle / wake path -------------------------------------------------
    #: Cost of the kernel scheduling a blocked thread back in after an
    #: interrupt (paper quotes ~25 us end to end for the LP path; the
    #: bare context switch is smaller and the rest is wake/ramp, which
    #: we model separately).
    context_switch_us: float = 5.0
    #: Thread wake cost when the idle loop polls (``idle=poll``): the
    #: scheduler notices the wakeup immediately, no IPI/idle-exit path.
    poll_wake_us: float = 1.5
    #: Voltage/frequency ramp stall after waking from a package-level
    #: sleep (C1E or deeper) under a utilization-driven governor.  The
    #: paper attributes ~30 us to this legacy-DVFS transition [15].
    wake_dvfs_ramp_us: float = 30.0
    #: Extra timer slack applied to block-wait sleeps when the machine
    #: is not configured for high-resolution wakeups (non-tickless,
    #: powersave). Uniform in [0, sleep_slack_us].
    sleep_slack_us: float = 12.0

    # --- SMT ---------------------------------------------------------------
    #: Relative per-thread speed when both hyperthreads of a core are busy.
    smt_per_thread_speed: float = 0.65
    #: Constant service-time overhead when SMT is enabled (sharing of
    #: core frontend resources even when the sibling is idle).
    smt_enabled_overhead: float = 0.01
    #: Broad softirq pressure on an SMT-off server: every request pays
    #: ``utilization * run_intensity * smt_broad_us`` of extra service
    #: (network RX/TX processing stealing worker cycles).
    smt_broad_us: float = 2.0
    #: Probability *scale* that a request on an SMT-off server suffers
    #: a full preemption episode (multiplied by utilization).
    smt_off_interference_scale: float = 0.06
    #: Mean duration of one preemption episode.
    smt_interference_us: float = 8.0
    #: Run-level spread (lognormal sigma) of the interference intensity:
    #: how much softirq/OS pressure a given run happens to see.
    smt_interference_run_sigma: float = 0.4

    # --- uncore ------------------------------------------------------------
    #: Extra per-event memory/IO latency when uncore frequency scaling
    #: is dynamic and the uncore has clocked down during idle.
    uncore_dynamic_penalty_us: float = 1.5

    # --- network -----------------------------------------------------------
    #: One-way network latency between client and server machines.
    network_one_way_us: float = 15.0
    #: Lognormal sigma of the network latency distribution.
    network_sigma: float = 0.08

    # --- kernel/net stack --------------------------------------------------
    #: Kernel RX/TX stack cost per message at nominal frequency.
    kernel_stack_us: float = 2.0

    # --- uncontrolled run-to-run environment -------------------------------
    #: Run-level multiplicative spread (lognormal sigma) of client-side
    #: overheads on an *untuned* machine (governor/thermal/placement
    #: state the experimenter did not reset deterministically).
    env_sigma_untuned: float = 0.16
    #: The same spread on a tuned (HP-like) machine.
    env_sigma_tuned: float = 0.02
    #: Run-level spread of server-side service times.
    env_sigma_server: float = 0.012

    def cstate_table(self) -> Tuple[CStateSpec, ...]:
        """Return the machine's C-state table (deepest last)."""
        return SKYLAKE_CSTATES

    def freq_bounds(self) -> Tuple[float, float]:
        """Return (min, max-with-turbo) frequency in GHz."""
        return (self.min_freq_ghz, self.turbo_freq_ghz)


#: Default parameter set used by all presets unless overridden.
DEFAULT_PARAMETERS = SkylakeParameters()


def cstates_by_name() -> Dict[str, CStateSpec]:
    """Return a name -> spec mapping of the Skylake C-state table."""
    return {spec.name: spec for spec in SKYLAKE_CSTATES}
