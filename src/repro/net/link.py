"""A point-to-point network link with a lognormal latency distribution.

The test cluster is a handful of machines on one switch, so we model
the wire+switch path as a lognormal around a ~15 us one-way latency
(typical for the 10 GbE CloudLab fabric) with a small tail.  Per-byte
serialization cost is added for large messages (HDSearch feature
vectors, Social Network timelines).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.parameters import DEFAULT_PARAMETERS, SkylakeParameters

#: Serialization cost per kilobyte at 10 GbE, in microseconds.
US_PER_KB_10GBE = 0.8


class NetworkLink:
    """One direction of a client<->server network path."""

    def __init__(self, params: SkylakeParameters = DEFAULT_PARAMETERS,
                 rng: Optional[np.random.Generator] = None,
                 mean_latency_us: Optional[float] = None) -> None:
        self._params = params
        self._mean = (params.network_one_way_us
                      if mean_latency_us is None else float(mean_latency_us))
        if self._mean <= 0:
            raise ValueError(
                f"mean latency must be positive, got {self._mean}"
            )
        self._sigma = params.network_sigma
        # lognormal(mu, sigma) has mean exp(mu + sigma^2/2).
        self._mu = math.log(self._mean) - 0.5 * self._sigma ** 2
        # Bind the sampler once: one attribute lookup per message on
        # the hot path instead of a generator-object traversal.  With
        # a BatchedStream rng (the builders' wiring) every latency
        # draw is served from a draw-ahead standard-normal block; a
        # raw Generator keeps the scalar path.
        self._draw = None if rng is None else rng.lognormal
        #: optional :class:`~repro.obs.core.LinkObserver` (null-object
        #: contract: one None test per message when unobserved).
        self.observer = None

    @property
    def mean_latency_us(self) -> float:
        """Configured mean one-way latency."""
        return self._mean

    def sample_latency_us(self, message_kb: float = 0.0) -> float:
        """Sample the one-way latency of one message.

        Args:
            message_kb: payload size; adds serialization delay.
        """
        draw = self._draw
        base = (self._mean if draw is None
                else float(draw(self._mu, self._sigma)))
        observer = self.observer
        if observer is not None:
            observer.on_message(message_kb)
        if message_kb > 0.0:
            return base + message_kb * US_PER_KB_10GBE
        return base
