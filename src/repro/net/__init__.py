"""Network substrate: links between client and server machines."""

from repro.net.link import NetworkLink

__all__ = ["NetworkLink"]
